"""§5 — Parallel primal–dual facility location (Algorithm 5.1, Thm 5.4).

Parallelizes Jain–Vazirani by raising all unfrozen client duals along
the geometric schedule ``α = (γ/m²)(1+ε)^ℓ`` instead of continuously:

* a facility opens once ``Σ_j max(0, (1+ε)α_j − d(j,i)) ≥ f_i`` —
  the ``(1+ε)`` lookahead guarantees no facility is ever *overtight*
  at the recorded α (Claim 5.1: the produced α, canonically completed
  with ``β_ij = max(0, α_j − d(j,i))``, is dual feasible — the test
  suite asserts this on every run);
* a client freezes once an open facility is within ``(1+ε)α_j``;
* edges ``(1+ε)α_j > d(j,i)`` to open facilities accumulate in a
  bipartite contribution graph ``H``;
* postprocessing takes ``I = MaxUDom(H)`` so each client pays at most
  one surviving facility, giving the ``(3+ε)`` guarantee via
  Lemmas 5.2/5.3 (the LMP inequality Eq. (5) is also asserted).

Preprocessing opens every facility payable at level ``γ/m²`` for free
(total damage ≤ 3γ/m) which pins the iteration count at
``≤ 3·log_{1+ε} m + O(1)``.

**Execution paths.** With ``compaction="auto"`` (default on non-trivial
instances) each iteration runs on the raise/freeze frontier instead of
the full matrix: frozen clients' payments are folded into a running
per-facility total the moment they freeze, the freeze test consults a
maintained nearest-open-facility distance instead of re-scanning all
open rows, and ``H`` edges are accumulated incrementally (full row once
when a facility opens; raised columns only afterwards). Per-iteration
work is then ``O(|F_closed| · |C_unfrozen|)`` — the §5 "remaining
instance" — rather than ``O(m)`` regardless of progress.
``compaction=False`` keeps the original full-matrix execution; seeded
runs of both paths return identical solutions on every tested workload
(exact equality is asserted in the equivalence suite; in principle the
reassociated payment sums could differ in the last ulp for instances
engineered to sit exactly on an opening threshold).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.dominator import max_u_dominator_set
from repro.core.frontier import resolve_compaction
from repro.core.greedy import _instance_gamma
from repro.core.result import FacilityLocationSolution
from repro.errors import ConvergenceError
from repro.metrics.instance import FacilityLocationInstance
from repro.metrics.sparse import SparseFacilityLocationInstance
from repro.pram.machine import PramMachine, ensure_machine
from repro.util.validation import check_epsilon

_REL_TOL = 1.0 + 1e-12


def parallel_primal_dual(
    instance: FacilityLocationInstance,
    *,
    epsilon: float = 0.1,
    machine: PramMachine | None = None,
    seed=None,
    backend=None,
    preprocess: bool = True,
    max_iterations: int | None = None,
    compaction: "bool | str" = "auto",
) -> FacilityLocationSolution:
    """Run Algorithm 5.1 to completion.

    Parameters
    ----------
    epsilon:
        Geometric raising slack ``ε > 0``; the guarantee is ``(3+ε′)``
        with ``ε′ → 0`` as ``ε → 0``.
    backend:
        Execution backend for a freshly constructed machine — a name
        (``"serial"``/``"thread"``/``"process"``/``"auto"``) or a
        :class:`~repro.pram.backends.Backend` instance. Mutually
        exclusive with ``machine``. Results are backend-invariant.
    preprocess:
        Open "free" facilities at level ``γ/m²`` first (§5
        preprocessing). Disable for the E5 ablation — without it the
        iteration count depends on the instance's distance spread.
    max_iterations:
        Safety bound; the default is the analysis bound
        ``3·log_{1+ε}(m) + 8`` when preprocessing is on, and a spread-
        dependent bound otherwise.
    compaction:
        ``"auto"`` (default), ``True``, or ``False`` — whether the
        raise/freeze loop runs on the frontier (see module docstring).
        Both paths return identical seeded solutions.

    Returns
    -------
    FacilityLocationSolution
        ``alpha`` holds the exact duals; ``extra`` includes the free
        facility set ``F0``, the tentative set ``F_T``, and the
        surviving independent set ``I``.
    """
    eps = check_epsilon(epsilon)
    machine = ensure_machine(machine, backend=backend, seed=seed, size=instance.m)
    m = max(instance.m, 2)
    if max_iterations is not None:
        iter_cap = max_iterations
    else:
        iter_cap = math.ceil(3.0 * math.log(m) / math.log1p(eps)) + 8
        if not instance.has_unit_weights:
            # Payments scale by w_j, so a client with weight w < 1 needs
            # its dual raised ~log_{1+ε}(1/w) levels further before its
            # (shrunken) contribution covers the same opening cost; the
            # geometric schedule gets that many extra levels. Weights
            # ≥ 1 only open facilities sooner — no extension needed.
            w_min = float(instance.client_weights.min())
            if w_min < 1.0:
                iter_cap += math.ceil(math.log(1.0 / w_min) / math.log1p(eps))

    if isinstance(instance, SparseFacilityLocationInstance):
        # Sparse instances always execute the (inherently compacted)
        # O(nnz)-per-iteration path; see repro.core.primal_dual_sparse.
        from repro.core.primal_dual_sparse import _parallel_primal_dual_sparse

        return _parallel_primal_dual_sparse(instance, eps, machine, preprocess, iter_cap)

    run = (
        _parallel_primal_dual_compact
        if resolve_compaction(compaction, instance.m)
        else _parallel_primal_dual_dense
    )
    return run(instance, eps, machine, preprocess, iter_cap)


def _parallel_primal_dual_dense(
    instance: FacilityLocationInstance,
    eps: float,
    machine: PramMachine,
    preprocess: bool,
    iter_cap: int,
) -> FacilityLocationSolution:
    """Reference full-matrix execution (every iteration touches ``m``)."""
    D = instance.D
    f = instance.f.astype(float)
    nf, nc = D.shape
    m = max(instance.m, 2)
    # Client multiplicities scale each client's payment contribution
    # w_j·max(0, (1+ε)α_j − d) — the continuous-time view of w_j
    # co-located duals rising together. Freeze/H-edge conditions stay
    # per-client. None keeps the exact unweighted code path.
    w = None if instance.has_unit_weights else instance.client_weights

    start = machine.snapshot()
    gamma = _instance_gamma(machine, D, f)
    # Degenerate but legal: γ = 0 means every client has a zero-cost,
    # zero-distance facility; the preprocessing opens them all below.
    base = gamma / (m * m) if gamma > 0 else 0.0

    alpha = np.zeros(nc, dtype=float)
    frozen = np.zeros(nc, dtype=bool)
    free_open = np.zeros(nf, dtype=bool)  # F0
    tent_open = np.zeros(nf, dtype=bool)  # F_T (opened during main loop)
    H = np.zeros((nf, nc), dtype=bool)

    if preprocess or gamma == 0.0:
        pay0 = machine.map(lambda d: np.maximum(0.0, base * _REL_TOL - d), D)
        if w is not None:
            pay0 = machine.map(lambda p, ww: p * ww, pay0, w[None, :])
        paid0 = machine.reduce(pay0, "add", axis=1)
        free_open = machine.map(lambda p, ff: p >= ff / _REL_TOL, paid0, f)
        if free_open.any():
            near = machine.map(
                lambda d, fo: fo & (d <= base * _REL_TOL),
                D,
                np.broadcast_to(free_open[:, None], D.shape),
            )
            freely = machine.reduce(near, "or", axis=0)
            frozen |= freely  # α stays 0 for freely connected clients

    if gamma == 0.0:
        frozen[:] = True  # everyone has a free zero-distance facility

    iterations = 0
    while not frozen.all():
        iterations += 1
        machine.bump_round("pd_iterations")
        if iterations > iter_cap:
            raise ConvergenceError(
                f"primal–dual exceeded {iter_cap} iterations (m={m}, eps={eps})"
            )
        t = base * (1.0 + eps) ** (iterations - 1) if base > 0 else 0.0
        # Step 1: raise unfrozen duals to the schedule level.
        alpha = machine.where(frozen, alpha, t)
        # Step 2: open facilities whose (1+ε)-lookahead payment covers f.
        pay = machine.map(
            lambda d, a: np.maximum(0.0, (1.0 + eps) * a - d),
            D,
            np.broadcast_to(alpha[None, :], D.shape),
        )
        if w is not None:
            pay = machine.map(lambda p, ww: p * ww, pay, w[None, :])
        paid = machine.reduce(pay, "add", axis=1)
        openable = machine.map(
            lambda p, ff, fo, to: (p * _REL_TOL >= ff) & ~fo & ~to, paid, f, free_open, tent_open
        )
        tent_open |= openable
        # Step 3: freeze unfrozen clients reaching any open facility.
        any_open = machine.map(lambda fo, to: fo | to, free_open, tent_open)
        if any_open.any():
            reachable = machine.reduce(
                machine.map(
                    lambda d, a, op: op & ((1.0 + eps) * a * _REL_TOL >= d),
                    D,
                    np.broadcast_to(alpha[None, :], D.shape),
                    np.broadcast_to(any_open[:, None], D.shape),
                ),
                "or",
                axis=0,
            )
            frozen |= reachable
        # Step 4: accumulate contribution edges to tentatively open facilities.
        H |= machine.map(
            lambda d, a, to: to & ((1.0 + eps) * a > d),
            D,
            np.broadcast_to(alpha[None, :], D.shape),
            np.broadcast_to(tent_open[:, None], D.shape),
        )
        # Exhaustion rule: if every facility is open but clients remain
        # unfrozen, connect them directly (α_j = min_i d(j,i)).
        if not frozen.all() and bool(np.all(free_open | tent_open)):
            nearest = machine.reduce(D, "min", axis=0)
            alpha = machine.where(frozen, alpha, np.maximum(nearest, alpha))
            frozen[:] = True
            H |= machine.map(
                lambda d, a, to: to & ((1.0 + eps) * a > d),
                D,
                np.broadcast_to(alpha[None, :], D.shape),
                np.broadcast_to(tent_open[:, None], D.shape),
            )

    return _finish(instance, machine, start, gamma, eps, alpha, free_open, tent_open, H, f)


def _parallel_primal_dual_compact(
    instance: FacilityLocationInstance,
    eps: float,
    machine: PramMachine,
    preprocess: bool,
    iter_cap: int,
) -> FacilityLocationSolution:
    """Frontier execution: per-iteration work ∝ closed × unfrozen.

    Invariants maintained between iterations (all exact, so results are
    identical to the dense path):

    * ``paid_frozen[i] = Σ_{j frozen} max(0, (1+ε)α_j − d(j,i))`` —
      folded in the iteration each client freezes, so step 2 only sums
      the unfrozen columns;
    * ``dmin_open[j] = min_{i open} d(j,i)`` — updated with newly
      opened rows only, so step 3 is ``O(|C_unfrozen|)``;
    * ``H`` rows are written once in full when a facility opens, and
      extended on raised (unfrozen) columns afterwards — together these
      cover exactly the pairs the dense recomputation flags.
    """
    D = instance.D
    f = instance.f.astype(float)
    nf, nc = D.shape
    m = max(instance.m, 2)
    # Client multiplicities (see the dense path); None = unweighted.
    w = None if instance.has_unit_weights else instance.client_weights

    start = machine.snapshot()
    gamma = _instance_gamma(machine, D, f)
    base = gamma / (m * m) if gamma > 0 else 0.0

    alpha = np.zeros(nc, dtype=float)
    frozen = np.zeros(nc, dtype=bool)
    free_open = np.zeros(nf, dtype=bool)  # F0
    tent_open = np.zeros(nf, dtype=bool)  # F_T
    H = np.zeros((nf, nc), dtype=bool)
    paid_frozen = np.zeros(nf, dtype=float)
    dmin_open = np.full(nc, np.inf)

    if preprocess or gamma == 0.0:
        pay0 = machine.map(lambda d: np.maximum(0.0, base * _REL_TOL - d), D)
        if w is not None:
            pay0 = machine.map(lambda p, ww: p * ww, pay0, w[None, :])
        paid0 = machine.reduce(pay0, "add", axis=1)
        free_open = machine.map(lambda p, ff: p >= ff / _REL_TOL, paid0, f)
        if free_open.any():
            near = machine.map(
                lambda d, fo: fo & (d <= base * _REL_TOL),
                D,
                np.broadcast_to(free_open[:, None], D.shape),
            )
            freely = machine.reduce(near, "or", axis=0)
            frozen |= freely
            # Freely connected clients freeze at α = 0: their payment
            # max(0, −d) is identically zero, so paid_frozen stays 0.
            fo_idx = np.flatnonzero(free_open)
            dmin_open = machine.reduce(machine.take_rows(D, fo_idx), "min", axis=0)

    if gamma == 0.0:
        frozen[:] = True

    iterations = 0
    # The closed × unfrozen frontier submatrix is cached across
    # iterations: the schedule runs many levels where nothing opens or
    # freezes, and the gather only needs redoing when the frontier
    # actually moved.
    unfro = old_tent = closed = D_cu = None
    frontier_dirty = True
    while not frozen.all():
        iterations += 1
        machine.bump_round("pd_iterations")
        if iterations > iter_cap:
            raise ConvergenceError(
                f"primal–dual exceeded {iter_cap} iterations (m={m}, eps={eps})"
            )
        t = base * (1.0 + eps) ** (iterations - 1) if base > 0 else 0.0

        old_tent = np.flatnonzero(tent_open)
        if frontier_dirty:
            unfro = np.flatnonzero(~frozen)  # raised each iteration
            closed = np.flatnonzero(~(free_open | tent_open))
            D_cu = machine.take_submatrix(D, closed, unfro)
            frontier_dirty = False

        # Step 1: raise unfrozen duals to the schedule level.
        alpha[unfro] = t
        machine.ledger.charge_basic("scatter", max(unfro.size, 1), depth=1)

        # Step 2: live payments over the closed × unfrozen frontier;
        # frozen columns are already folded into paid_frozen.
        live = machine.masked_axpy(-1.0, D_cu, (1.0 + eps) * t, clamp_min=0.0)
        if w is not None:
            live = machine.map(lambda lv, ww: lv * ww, live, w[unfro][None, :])
        paid = machine.map(
            lambda fr, lv: fr + lv,
            machine.take_rows(paid_frozen, closed),
            machine.reduce(live, "add", axis=1),
        )
        openable = machine.map(
            lambda p, ff: p * _REL_TOL >= ff, paid, machine.take_rows(f, closed)
        )
        new_open = closed[openable]
        tent_open[new_open] = True
        frontier_dirty = frontier_dirty or new_open.size > 0
        machine.ledger.charge_basic("scatter", max(new_open.size, 1), depth=1)

        # Step 3: freeze unfrozen clients reaching any open facility,
        # via the maintained nearest-open distance.
        if new_open.size:
            dnew = machine.reduce(machine.take_rows(D, new_open), "min", axis=0)
            dmin_open = machine.map(np.minimum, dmin_open, dnew)
        newly_frozen = np.zeros(0, dtype=np.intp)
        if free_open.any() or tent_open.any():
            reach = machine.map(
                lambda a, dm: (1.0 + eps) * a * _REL_TOL >= dm,
                alpha[unfro],
                machine.take_rows(dmin_open, unfro),
            )
            newly_frozen = unfro[reach]
            frozen[newly_frozen] = True
            frontier_dirty = frontier_dirty or newly_frozen.size > 0
            machine.ledger.charge_basic("scatter", max(newly_frozen.size, 1), depth=1)

        # Step 4: H edges — full rows for newly opened facilities,
        # raised columns for the previously tentative ones.
        if new_open.size:
            H[new_open, :] = machine.map(
                lambda d, a: (1.0 + eps) * a > d,
                machine.take_rows(D, new_open),
                alpha[None, :],
            )
        if old_tent.size and unfro.size:
            H[np.ix_(old_tent, unfro)] |= machine.map(
                lambda d: (1.0 + eps) * t > d,
                machine.take_submatrix(D, old_tent, unfro),
            )

        # Fold the payments of clients frozen this iteration into the
        # per-facility running totals (their α is now final). This
        # reassociates the dense path's single row-sum into batch
        # partial sums, so the two paths can differ in the last ulp; a
        # divergence requires a payment within an ulp of the tolerance-
        # shifted opening threshold, which no tested workload exhibits
        # (the equivalence suite asserts exact equality).
        if newly_frozen.size:
            contrib = machine.masked_axpy(
                -1.0,
                machine.take_columns(D, newly_frozen),
                (1.0 + eps) * t,
                clamp_min=0.0,
            )
            if w is not None:
                contrib = machine.map(
                    lambda c, ww: c * ww, contrib, w[newly_frozen][None, :]
                )
            paid_frozen = machine.map(
                lambda pf, c: pf + c, paid_frozen, machine.reduce(contrib, "add", axis=1)
            )

        # Exhaustion rule: if every facility is open but clients remain
        # unfrozen, connect them directly (α_j = min_i d(j,i)).
        if not frozen.all() and bool(np.all(free_open | tent_open)):
            still = np.flatnonzero(~frozen)
            # All facilities are open, so dmin_open is the full nearest
            # distance for the still-unfrozen columns.
            alpha[still] = np.maximum(machine.take_rows(dmin_open, still), alpha[still])
            machine.ledger.charge_basic("scatter", max(still.size, 1), depth=1)
            frozen[:] = True
            tent_idx = np.flatnonzero(tent_open)
            if tent_idx.size and still.size:
                H[np.ix_(tent_idx, still)] |= machine.map(
                    lambda d, a: (1.0 + eps) * a > d,
                    machine.take_submatrix(D, tent_idx, still),
                    alpha[still][None, :],
                )

    return _finish(instance, machine, start, gamma, eps, alpha, free_open, tent_open, H, f)


def _finish(
    instance: FacilityLocationInstance,
    machine: PramMachine,
    start,
    gamma: float,
    eps: float,
    alpha: np.ndarray,
    free_open: np.ndarray,
    tent_open: np.ndarray,
    H: np.ndarray,
    f: np.ndarray,
) -> FacilityLocationSolution:
    """Shared §5 post-processing: MaxUDom survivors + solution assembly."""
    nf = instance.n_facilities
    # Post-processing: survivors = maximal U-dominator set of H over F_T.
    if tent_open.any():
        survivors = max_u_dominator_set(H, machine, candidates=tent_open)
    else:
        survivors = np.zeros(nf, dtype=bool)
    final_open = survivors | free_open
    if not final_open.any():
        # Only possible when no client exists to pay anything — open the
        # cheapest facility to return a valid solution shape.
        final_open[int(np.argmin(f))] = True

    opened_idx = np.flatnonzero(final_open)
    return FacilityLocationSolution(
        opened=opened_idx,
        cost=instance.cost(opened_idx),
        facility_cost=instance.facility_cost(opened_idx),
        connection_cost=instance.connection_cost(opened_idx),
        alpha=alpha,
        rounds=dict(machine.ledger.rounds),
        model_costs=machine.ledger.since(start),
        extra={
            "gamma": gamma,
            "F0": np.flatnonzero(free_open),
            "F_T": np.flatnonzero(tent_open),
            "I": np.flatnonzero(survivors),
            "H": H,
            "epsilon": eps,
        },
    )
