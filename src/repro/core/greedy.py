"""§4 — Parallel greedy facility location (Algorithm 4.1, Theorem 4.9).

Parallelizes the Jain et al. greedy ("repeatedly open the cheapest
star") by admitting *every* facility whose cheapest maximal star is
within a ``(1+ε)`` factor of the round minimum ``τ``, then running a
randomized **facility subselection** so facilities are only opened when
at least a ``1/(2(1+ε))`` fraction of their neighborhood chose them —
the clean-up that keeps the dual-fitting accounting intact.

Structure per outer round (clients remaining):

1. cheapest maximal star price per facility (presorted prefix sums,
   :mod:`repro.core.stars`);
2. ``τ = min price``; admit ``I = {i : price ≤ τ(1+ε)}``;
3. bipartite ``H`` on ``(I, C′)`` with edges ``d(i,j) ≤ τ(1+ε)``;
4. subselection: clients vote for their minimum-priority admitted
   neighbor under a random permutation; facilities with votes ≥
   ``deg/(2(1+ε))`` open, their neighborhoods leave; facilities whose
   *reduced* star price rises above ``τ(1+ε)`` leave ``I`` (they return
   in a later outer round) — Lemma 4.8 bounds the subselection rounds.

The ``γ/m²`` preprocessing (open all stars priced ≤ γ/m², costing at
most ``opt/m`` extra) bounds the outer rounds by ``O(log_{1+ε} m)``.

Dual artifacts: each removed client records ``α_j = τ`` of its removal
round; Lemma 4.3 (``cost ≤ 2(1+ε)² Σ α_j``) and Lemma 4.7 (``α/3`` is
dual feasible) are then executable — the tests run both.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.result import FacilityLocationSolution
from repro.core.stars import cheapest_star_prices_masked, presort_distances
from repro.errors import ConvergenceError
from repro.metrics.instance import FacilityLocationInstance
from repro.pram.machine import PramMachine
from repro.util.validation import check_epsilon

_REL_TOL = 1.0 + 1e-12  # float-safe threshold comparisons


def _instance_gamma(machine: PramMachine, D: np.ndarray, f: np.ndarray) -> float:
    """Eq. (2) bound ``γ = max_j min_i (f_i + d(j, i))``."""
    total = machine.map(lambda d, ff: d + ff, D, np.broadcast_to(f[:, None], D.shape))
    gamma_j = machine.reduce(total, "min", axis=0)
    return float(machine.reduce(gamma_j, "max"))


def parallel_greedy(
    instance: FacilityLocationInstance,
    *,
    epsilon: float = 0.1,
    machine: PramMachine | None = None,
    seed=None,
    preprocess: bool = True,
    max_outer_rounds: int | None = None,
    max_subselect_rounds: int | None = None,
) -> FacilityLocationSolution:
    """Run Algorithm 4.1 to completion.

    Parameters
    ----------
    epsilon:
        The slack parameter ``0 < ε ≤ 1``; smaller ε tracks the
        sequential greedy more closely (better cost, more rounds).
    machine:
        PRAM machine to execute/charge on (fresh serial one if absent;
        ``seed`` is only used when constructing a fresh machine).
    preprocess:
        Apply the ``γ/m²`` cheap-star preprocessing (§4, "Bounding the
        number of rounds"). Disable to measure its effect (bench E5).
    max_outer_rounds / max_subselect_rounds:
        Safety bounds (defaults: ``n_c + 8`` outer — each outer round
        removes ≥ 1 client — and a large multiple of the Lemma 4.8
        expectation for subselection); exceeding them raises
        :class:`~repro.errors.ConvergenceError`.

    Returns
    -------
    FacilityLocationSolution
        With ``alpha`` (the dual-fitting vector), round counters
        ``greedy_outer`` / ``greedy_subselect``, ledger costs, and
        ``extra = {gamma, tau_trace, preprocessed_clients}``.
    """
    eps = check_epsilon(epsilon, upper=1.0)
    machine = machine if machine is not None else PramMachine(seed=seed)
    D = instance.D
    f_cur = instance.f.astype(float).copy()
    nf, nc = D.shape
    m = max(instance.m, 2)

    outer_cap = max_outer_rounds if max_outer_rounds is not None else nc + 8
    if max_subselect_rounds is not None:
        sub_cap = max_subselect_rounds
    else:
        sub_cap = 64 + 16 * math.ceil(math.log(m) / math.log1p(eps))

    start = machine.snapshot()
    order, D_sorted = presort_distances(machine, D)
    active = np.ones(nc, dtype=bool)
    opened = np.zeros(nf, dtype=bool)
    alpha = np.zeros(nc, dtype=float)
    tau_trace: list[float] = []
    gamma = _instance_gamma(machine, D, instance.f.astype(float))
    preprocessed = 0

    if preprocess:
        threshold = gamma / (m * m)
        prices = cheapest_star_prices_masked(machine, D_sorted, order, f_cur, active)
        pre_open = machine.map(lambda p: p <= threshold * _REL_TOL, prices)
        if pre_open.any():
            # Star members (Fact 4.2(1)): active clients with d ≤ price.
            member = machine.map(
                lambda d, p, po: po & (d <= p * _REL_TOL),
                D,
                np.broadcast_to(prices[:, None], D.shape),
                np.broadcast_to(pre_open[:, None], D.shape),
            )
            served = machine.reduce(member, "or", axis=0)
            opened |= pre_open
            f_cur = machine.where(pre_open, 0.0, f_cur)
            active &= ~served
            preprocessed = int(served.sum())

    while active.any():
        outer = machine.bump_round("greedy_outer")
        if outer > outer_cap:
            raise ConvergenceError(
                f"greedy exceeded {outer_cap} outer rounds (m={m}, eps={eps})"
            )
        prices = cheapest_star_prices_masked(machine, D_sorted, order, f_cur, active)
        tau = float(machine.reduce(prices, "min"))
        tau_trace.append(tau)
        cut = tau * (1.0 + eps) * _REL_TOL
        I = machine.map(lambda p: p <= cut, prices)
        E = machine.map(
            lambda d, Ii, a: Ii & a & (d <= cut),
            D,
            np.broadcast_to(I[:, None], D.shape),
            np.broadcast_to(active[None, :], D.shape),
        )

        sub = 0
        while True:
            deg = machine.reduce(E.astype(float), "add", axis=1)
            I = machine.map(lambda Ii, dg: Ii & (dg > 0), I, deg)
            E = machine.map(lambda e, Ii: e & Ii, E, np.broadcast_to(I[:, None], E.shape))
            if not I.any():
                break
            sub += 1
            machine.bump_round("greedy_subselect")
            if sub > sub_cap:
                raise ConvergenceError(
                    f"greedy subselection exceeded {sub_cap} rounds (m={m}, eps={eps})"
                )

            # 4(a–b): random permutation; every client picks its
            # minimum-priority admitted neighbor.
            Pi = machine.random_priorities(nf).astype(float)
            col_priorities = machine.where(E, Pi[:, None], np.inf)
            phi = machine.argmin(col_priorities, axis=0)
            has_edge = machine.reduce(E, "or", axis=0)

            # 4(c): votes per facility; open the well-supported ones.
            vote_matrix = machine.map(
                lambda ph, he, row: (ph == row) & he,
                np.broadcast_to(phi[None, :], E.shape),
                np.broadcast_to(has_edge[None, :], E.shape),
                np.broadcast_to(np.arange(nf)[:, None], E.shape),
            )
            votes = machine.reduce(vote_matrix.astype(float), "add", axis=1)
            open_now = machine.map(
                lambda Ii, v, dg: Ii & (dg > 0) & (v * (2.0 * (1.0 + eps)) >= dg * (1.0 - 1e-12)),
                I,
                votes,
                deg,
            )
            if open_now.any():
                served = machine.reduce(
                    machine.where(E, np.broadcast_to(open_now[:, None], E.shape), False),
                    "or",
                    axis=0,
                )
                opened |= open_now
                f_cur = machine.where(open_now, 0.0, f_cur)
                I = machine.map(lambda Ii, o: Ii & ~o, I, open_now)
                alpha = machine.where(served & active, tau, alpha)
                active &= ~served
                E = machine.map(
                    lambda e, srv, Ii: e & ~srv & Ii,
                    E,
                    np.broadcast_to(served[None, :], E.shape),
                    np.broadcast_to(I[:, None], E.shape),
                )

            # 4(d): drop facilities whose reduced star price exceeds the cut.
            wsum = machine.reduce(machine.where(E, D, 0.0), "add", axis=1)
            deg_now = machine.reduce(E.astype(float), "add", axis=1)
            drop = machine.map(
                lambda Ii, dg, ws, fc: Ii & (dg > 0) & ((fc + ws) > cut * dg * _REL_TOL),
                I,
                deg_now,
                wsum,
                f_cur,
            )
            if drop.any():
                I = machine.map(lambda Ii, dr: Ii & ~dr, I, drop)
                E = machine.map(lambda e, Ii: e & Ii, E, np.broadcast_to(I[:, None], E.shape))

    opened_idx = np.flatnonzero(opened)
    return FacilityLocationSolution(
        opened=opened_idx,
        cost=instance.cost(opened_idx),
        facility_cost=instance.facility_cost(opened_idx),
        connection_cost=instance.connection_cost(opened_idx),
        alpha=alpha,
        rounds=dict(machine.ledger.rounds),
        model_costs=machine.ledger.since(start),
        extra={
            "gamma": gamma,
            "tau_trace": tau_trace,
            "preprocessed_clients": preprocessed,
            "epsilon": eps,
        },
    )
