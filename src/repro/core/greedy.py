"""§4 — Parallel greedy facility location (Algorithm 4.1, Theorem 4.9).

Parallelizes the Jain et al. greedy ("repeatedly open the cheapest
star") by admitting *every* facility whose cheapest maximal star is
within a ``(1+ε)`` factor of the round minimum ``τ``, then running a
randomized **facility subselection** so facilities are only opened when
at least a ``1/(2(1+ε))`` fraction of their neighborhood chose them —
the clean-up that keeps the dual-fitting accounting intact.

Structure per outer round (clients remaining):

1. cheapest maximal star price per facility (presorted prefix sums,
   :mod:`repro.core.stars`);
2. ``τ = min price``; admit ``I = {i : price ≤ τ(1+ε)}``;
3. bipartite ``H`` on ``(I, C′)`` with edges ``d(i,j) ≤ τ(1+ε)``;
4. subselection: clients vote for their minimum-priority admitted
   neighbor under a random permutation; facilities with votes ≥
   ``deg/(2(1+ε))`` open, their neighborhoods leave; facilities whose
   *reduced* star price rises above ``τ(1+ε)`` leave ``I`` (they return
   in a later outer round) — Lemma 4.8 bounds the subselection rounds.

The ``γ/m²`` preprocessing (open all stars priced ≤ γ/m², costing at
most ``opt/m`` extra) bounds the outer rounds by ``O(log_{1+ε} m)``.

Dual artifacts: each removed client records ``α_j = τ`` of its removal
round; Lemma 4.3 (``cost ≤ 2(1+ε)² Σ α_j``) and Lemma 4.7 (``α/3`` is
dual feasible) are then executable — the tests run both.

**Execution paths.** The default (``compaction="auto"``) runs a
frontier-compacted variant of the loop above on non-trivial instances:
the presorted structure is packed down to the still-active clients
after every removal, the subselection graph lives on a
``|I| × |C_active|`` submatrix, and votes are counted with a segmented
bincount instead of an ``n_f × n_c`` vote matrix. Per-round work —
wall-clock and ledger-charged — is then proportional to the remaining
instance, which is exactly the §4 cost analysis ("``O(m)`` work over
the remaining instance"). ``compaction=False`` keeps the original
full-matrix execution; seeded runs of both paths return identical
solutions on every tested workload (asserted exactly by the
equivalence suite — only instances engineered so a star price sits
within an ulp of the admission cut could in principle diverge).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.frontier import resolve_compaction
from repro.core.result import FacilityLocationSolution
from repro.core.stars import (
    cheapest_star_prices_compact,
    cheapest_star_prices_masked,
    compact_sorted_columns,
    presort_distances,
)
from repro.errors import ConvergenceError
from repro.metrics.instance import FacilityLocationInstance
from repro.metrics.sparse import SparseFacilityLocationInstance
from repro.pram.machine import PramMachine, ensure_machine
from repro.util.validation import check_epsilon

_REL_TOL = 1.0 + 1e-12  # float-safe threshold comparisons


def _instance_gamma(machine: PramMachine, D: np.ndarray, f: np.ndarray) -> float:
    """Eq. (2) bound ``γ = max_j min_i (f_i + d(j, i))``."""
    total = machine.map(lambda d, ff: d + ff, D, np.broadcast_to(f[:, None], D.shape))
    gamma_j = machine.reduce(total, "min", axis=0)
    return float(machine.reduce(gamma_j, "max"))


def parallel_greedy(
    instance: FacilityLocationInstance,
    *,
    epsilon: float = 0.1,
    machine: PramMachine | None = None,
    seed=None,
    backend=None,
    preprocess: bool = True,
    max_outer_rounds: int | None = None,
    max_subselect_rounds: int | None = None,
    compaction: "bool | str" = "auto",
) -> FacilityLocationSolution:
    """Run Algorithm 4.1 to completion.

    Parameters
    ----------
    epsilon:
        The slack parameter ``0 < ε ≤ 1``; smaller ε tracks the
        sequential greedy more closely (better cost, more rounds).
    machine:
        PRAM machine to execute/charge on (a fresh one if absent;
        ``seed``/``backend`` are only used when constructing it).
    backend:
        Execution backend for the fresh machine — a name
        (``"serial"``/``"thread"``/``"process"``/``"auto"``) or a
        :class:`~repro.pram.backends.Backend` instance. Mutually
        exclusive with ``machine``. Results are backend-invariant.
    preprocess:
        Apply the ``γ/m²`` cheap-star preprocessing (§4, "Bounding the
        number of rounds"). Disable to measure its effect (bench E5).
    max_outer_rounds / max_subselect_rounds:
        Safety bounds (defaults: ``n_c + 8`` outer — each outer round
        removes ≥ 1 client — and a large multiple of the Lemma 4.8
        expectation for subselection); exceeding them raises
        :class:`~repro.errors.ConvergenceError`.
    compaction:
        ``"auto"`` (default), ``True``, or ``False`` — whether per-round
        work runs on frontier-compacted submatrices (see module
        docstring). Both paths return identical seeded solutions.
        Sparse instances always execute the (inherently compacted)
        sparse path, whatever this is set to.

    Returns
    -------
    FacilityLocationSolution
        With ``alpha`` (the dual-fitting vector), round counters
        ``greedy_outer`` / ``greedy_subselect``, ledger costs, and
        ``extra = {gamma, tau_trace, preprocessed_clients}``.

    Notes
    -----
    ``instance`` may also be a
    :class:`~repro.metrics.sparse.SparseFacilityLocationInstance`; the
    algorithm then runs over the candidate-edge structure in
    ``O(nnz(frontier rows))`` work per round
    (:mod:`repro.core.greedy_sparse`) and returns byte-identical seeded
    solutions to the dense paths on dense-representable instances.
    """
    eps = check_epsilon(epsilon, upper=1.0)
    machine = ensure_machine(machine, backend=backend, seed=seed, size=instance.m)
    m = max(instance.m, 2)

    outer_cap = max_outer_rounds if max_outer_rounds is not None else instance.n_clients + 8
    if max_subselect_rounds is not None:
        sub_cap = max_subselect_rounds
    else:
        sub_cap = 64 + 16 * math.ceil(math.log(m) / math.log1p(eps))

    if isinstance(instance, SparseFacilityLocationInstance):
        from repro.core.greedy_sparse import _parallel_greedy_sparse

        return _parallel_greedy_sparse(instance, eps, machine, preprocess, outer_cap, sub_cap)

    run = _parallel_greedy_compact if resolve_compaction(compaction, instance.m) else _parallel_greedy_dense
    return run(instance, eps, machine, preprocess, outer_cap, sub_cap)


def _apply_preprocessing(
    machine: PramMachine,
    D: np.ndarray,
    prices: np.ndarray,
    threshold: float,
    opened: np.ndarray,
    f_cur: np.ndarray,
    active: np.ndarray,
) -> tuple[np.ndarray, int]:
    """§4 ``γ/m²`` preprocessing: open every star priced ≤ threshold.

    Mutates ``opened``/``active`` in place, returns the updated opening
    costs and the served-client count. Shared verbatim by both
    execution paths (identical ops ⇒ identical results).
    """
    pre_open = machine.map(lambda p: p <= threshold * _REL_TOL, prices)
    preprocessed = 0
    if pre_open.any():
        # Star members (Fact 4.2(1)): active clients with d ≤ price.
        member = machine.map(
            lambda d, p, po: po & (d <= p * _REL_TOL),
            D,
            np.broadcast_to(prices[:, None], D.shape),
            np.broadcast_to(pre_open[:, None], D.shape),
        )
        served = machine.reduce(member, "or", axis=0)
        opened |= pre_open
        f_cur = machine.where(pre_open, 0.0, f_cur)
        active &= ~served
        preprocessed = int(served.sum())
    return f_cur, preprocessed


def _build_solution(
    instance: FacilityLocationInstance,
    machine: PramMachine,
    start,
    opened: np.ndarray,
    alpha: np.ndarray,
    gamma: float,
    tau_trace: list,
    preprocessed: int,
    eps: float,
) -> FacilityLocationSolution:
    """Assemble the §4 solution object (shared by both paths)."""
    opened_idx = np.flatnonzero(opened)
    return FacilityLocationSolution(
        opened=opened_idx,
        cost=instance.cost(opened_idx),
        facility_cost=instance.facility_cost(opened_idx),
        connection_cost=instance.connection_cost(opened_idx),
        alpha=alpha,
        rounds=dict(machine.ledger.rounds),
        model_costs=machine.ledger.since(start),
        extra={
            "gamma": gamma,
            "tau_trace": tau_trace,
            "preprocessed_clients": preprocessed,
            "epsilon": eps,
        },
    )


def _parallel_greedy_dense(
    instance: FacilityLocationInstance,
    eps: float,
    machine: PramMachine,
    preprocess: bool,
    outer_cap: int,
    sub_cap: int,
) -> FacilityLocationSolution:
    """Reference full-matrix execution (every round touches ``n_f × n_c``)."""
    D = instance.D
    f_cur = instance.f.astype(float).copy()
    nf, nc = D.shape
    m = max(instance.m, 2)
    # Client multiplicities generalize star prices to (f + Σwd)/Σw and
    # subselection degrees/votes to weighted sums; None keeps the exact
    # unweighted code path (byte-identical seeded runs). The weighted
    # distance matrix is loop-invariant — built (and ledger-charged)
    # once.
    w = None if instance.has_unit_weights else instance.client_weights
    wD = None if w is None else machine.map(lambda d, ww: d * ww, D, w[None, :])

    start = machine.snapshot()
    order, D_sorted = presort_distances(machine, D)
    active = np.ones(nc, dtype=bool)
    opened = np.zeros(nf, dtype=bool)
    alpha = np.zeros(nc, dtype=float)
    tau_trace: list[float] = []
    gamma = _instance_gamma(machine, D, instance.f.astype(float))
    preprocessed = 0

    if preprocess:
        prices = cheapest_star_prices_masked(
            machine, D_sorted, order, f_cur, active, weights=w
        )
        f_cur, preprocessed = _apply_preprocessing(
            machine, D, prices, gamma / (m * m), opened, f_cur, active
        )

    while active.any():
        outer = machine.bump_round("greedy_outer")
        if outer > outer_cap:
            raise ConvergenceError(
                f"greedy exceeded {outer_cap} outer rounds (m={m}, eps={eps})"
            )
        prices = cheapest_star_prices_masked(
            machine, D_sorted, order, f_cur, active, weights=w
        )
        tau = float(machine.reduce(prices, "min"))
        tau_trace.append(tau)
        cut = tau * (1.0 + eps) * _REL_TOL
        I = machine.map(lambda p: p <= cut, prices)
        E = machine.map(
            lambda d, Ii, a: Ii & a & (d <= cut),
            D,
            np.broadcast_to(I[:, None], D.shape),
            np.broadcast_to(active[None, :], D.shape),
        )

        sub = 0
        while True:
            if w is None:
                deg = machine.reduce(E.astype(float), "add", axis=1)
            else:
                deg = machine.reduce(
                    machine.where(E, np.broadcast_to(w[None, :], E.shape), 0.0),
                    "add",
                    axis=1,
                )
            I = machine.map(lambda Ii, dg: Ii & (dg > 0), I, deg)
            E = machine.map(lambda e, Ii: e & Ii, E, np.broadcast_to(I[:, None], E.shape))
            if not I.any():
                break
            sub += 1
            machine.bump_round("greedy_subselect")
            if sub > sub_cap:
                raise ConvergenceError(
                    f"greedy subselection exceeded {sub_cap} rounds (m={m}, eps={eps})"
                )

            # 4(a–b): random permutation; every client picks its
            # minimum-priority admitted neighbor.
            Pi = machine.random_priorities(nf).astype(float)
            col_priorities = machine.where(E, Pi[:, None], np.inf)
            phi = machine.argmin(col_priorities, axis=0)
            has_edge = machine.reduce(E, "or", axis=0)

            # 4(c): votes per facility; open the well-supported ones.
            vote_matrix = machine.map(
                lambda ph, he, row: (ph == row) & he,
                np.broadcast_to(phi[None, :], E.shape),
                np.broadcast_to(has_edge[None, :], E.shape),
                np.broadcast_to(np.arange(nf)[:, None], E.shape),
            )
            if w is None:
                votes = machine.reduce(vote_matrix.astype(float), "add", axis=1)
            else:
                votes = machine.reduce(
                    machine.where(
                        vote_matrix, np.broadcast_to(w[None, :], E.shape), 0.0
                    ),
                    "add",
                    axis=1,
                )
            open_now = machine.map(
                lambda Ii, v, dg: Ii & (dg > 0) & (v * (2.0 * (1.0 + eps)) >= dg * (1.0 - 1e-12)),
                I,
                votes,
                deg,
            )
            if open_now.any():
                served = machine.reduce(
                    machine.where(E, np.broadcast_to(open_now[:, None], E.shape), False),
                    "or",
                    axis=0,
                )
                opened |= open_now
                f_cur = machine.where(open_now, 0.0, f_cur)
                I = machine.map(lambda Ii, o: Ii & ~o, I, open_now)
                alpha = machine.where(served & active, tau, alpha)
                active &= ~served
                E = machine.map(
                    lambda e, srv, Ii: e & ~srv & Ii,
                    E,
                    np.broadcast_to(served[None, :], E.shape),
                    np.broadcast_to(I[:, None], E.shape),
                )

            # 4(d): drop facilities whose reduced star price exceeds the cut.
            if w is None:
                wsum = machine.reduce(machine.where(E, D, 0.0), "add", axis=1)
                deg_now = machine.reduce(E.astype(float), "add", axis=1)
            else:
                wsum = machine.reduce(machine.where(E, wD, 0.0), "add", axis=1)
                deg_now = machine.reduce(
                    machine.where(E, np.broadcast_to(w[None, :], E.shape), 0.0),
                    "add",
                    axis=1,
                )
            drop = machine.map(
                lambda Ii, dg, ws, fc: Ii & (dg > 0) & ((fc + ws) > cut * dg * _REL_TOL),
                I,
                deg_now,
                wsum,
                f_cur,
            )
            if drop.any():
                I = machine.map(lambda Ii, dr: Ii & ~dr, I, drop)
                E = machine.map(lambda e, Ii: e & Ii, E, np.broadcast_to(I[:, None], E.shape))

    return _build_solution(
        instance, machine, start, opened, alpha, gamma, tau_trace, preprocessed, eps
    )


def _parallel_greedy_compact(
    instance: FacilityLocationInstance,
    eps: float,
    machine: PramMachine,
    preprocess: bool,
    outer_cap: int,
    sub_cap: int,
) -> FacilityLocationSolution:
    """Frontier-compacted execution: per-round work ∝ remaining instance.

    Differences from the dense path (results are identical):

    * the presorted structure is packed to the live clients after every
      removal, so star pricing costs ``O(n_f · |C_active|)``;
    * the subselection graph is a dense ``|I| × |C_active|`` submatrix
      gathered per outer round; open/served/drop updates compact it
      further instead of masking a full matrix;
    * votes are a segmented :meth:`~repro.pram.machine.PramMachine.count_votes`
      over client choices — ``O(|C_active|)`` instead of three broadcast
      ``n_f × n_c`` temporaries.

    Random priorities are still drawn over the full facility set each
    subselection round, which keeps the RNG stream — and therefore every
    decision — bit-identical to the dense path.
    """
    D = instance.D
    f_cur = instance.f.astype(float).copy()
    nf, nc = D.shape
    m = max(instance.m, 2)
    # Client multiplicities (see the dense path); None = unweighted.
    w = None if instance.has_unit_weights else instance.client_weights

    start = machine.snapshot()
    order, D_sorted = presort_distances(machine, D)
    active = np.ones(nc, dtype=bool)
    opened = np.zeros(nf, dtype=bool)
    alpha = np.zeros(nc, dtype=float)
    tau_trace: list[float] = []
    gamma = _instance_gamma(machine, D, instance.f.astype(float))
    preprocessed = 0

    # Live-frontier sorted structure: each facility's remaining clients
    # in ascending-distance order (ids + distances, plus weights on
    # weighted instances).
    live_ids, live_d = order, D_sorted
    live_w = (
        None
        if w is None
        else machine.gather_rows(np.broadcast_to(w, D_sorted.shape), order)
    )

    def _compact_live_structure():
        nonlocal live_ids, live_d, live_w
        if live_w is None:
            live_ids, live_d = compact_sorted_columns(machine, live_ids, live_d, active)
        else:
            live_ids, live_d, live_w = compact_sorted_columns(
                machine, live_ids, live_d, active, sorted_w=live_w
            )

    if preprocess:
        prices = cheapest_star_prices_compact(machine, live_d, f_cur, live_w)
        f_cur, preprocessed = _apply_preprocessing(
            machine, D, prices, gamma / (m * m), opened, f_cur, active
        )
        if preprocessed:
            _compact_live_structure()

    while active.any():
        outer = machine.bump_round("greedy_outer")
        if outer > outer_cap:
            raise ConvergenceError(
                f"greedy exceeded {outer_cap} outer rounds (m={m}, eps={eps})"
            )
        prices = cheapest_star_prices_compact(machine, live_d, f_cur, live_w)
        tau = float(machine.reduce(prices, "min"))
        tau_trace.append(tau)
        cut = tau * (1.0 + eps) * _REL_TOL

        # Frontier index sets: admitted facilities × active clients.
        adm = np.flatnonzero(machine.map(lambda p: p <= cut, prices))
        act = np.flatnonzero(active)
        w_act = None if w is None else machine.take_rows(w, act)
        D_sub = machine.take_submatrix(D, adm, act)
        E_sub = machine.map(lambda d: d <= cut, D_sub)
        any_served = False

        sub = 0
        while True:
            if w_act is None:
                deg = machine.reduce(E_sub.astype(float), "add", axis=1)
            else:
                deg = machine.reduce(
                    machine.where(E_sub, w_act[None, :], 0.0), "add", axis=1
                )
            row_keep = machine.map(lambda dg: dg > 0, deg)
            if not row_keep.all():
                keep_idx = np.flatnonzero(row_keep)
                adm = adm[keep_idx]
                deg = deg[keep_idx]
                E_sub = machine.take_rows(E_sub, keep_idx)
                D_sub = machine.take_rows(D_sub, keep_idx)
            if adm.size == 0:
                break
            sub += 1
            machine.bump_round("greedy_subselect")
            if sub > sub_cap:
                raise ConvergenceError(
                    f"greedy subselection exceeded {sub_cap} rounds (m={m}, eps={eps})"
                )

            # 4(a–b): the permutation is drawn over *all* facilities
            # (RNG parity with the dense path); only the admitted rows'
            # priorities are consumed.
            Pi = machine.random_priorities(nf).astype(float)
            pi_adm = machine.take_rows(Pi, adm)
            col_priorities = machine.where(E_sub, pi_adm[:, None], np.inf)
            phi = machine.argmin(col_priorities, axis=0)
            has_edge = machine.reduce(E_sub, "or", axis=0)

            # 4(c): segmented vote count — O(|C_active|), no vote matrix.
            if w_act is None:
                votes = machine.count_votes(phi, adm.size, mask=has_edge).astype(float)
            else:
                votes = np.asarray(
                    machine.scatter_add(
                        np.where(has_edge, w_act, 0.0),
                        np.where(has_edge, phi, 0),
                        adm.size,
                    )
                )
            open_now = machine.map(
                lambda v, dg: (dg > 0) & (v * (2.0 * (1.0 + eps)) >= dg * (1.0 - 1e-12)),
                votes,
                deg,
            )
            if open_now.any():
                served_local = machine.reduce(
                    machine.where(E_sub, open_now[:, None], False), "or", axis=0
                )
                opened_ids = adm[open_now]
                served_ids = act[served_local]
                opened[opened_ids] = True
                f_cur[opened_ids] = 0.0
                alpha[served_ids] = tau
                active[served_ids] = False
                machine.ledger.charge_basic(
                    "scatter", opened_ids.size + 2 * served_ids.size, depth=1
                )
                any_served = any_served or served_ids.size > 0
                row_keep_idx = np.flatnonzero(~open_now)
                col_keep_idx = np.flatnonzero(~served_local)
                adm = adm[row_keep_idx]
                act = act[col_keep_idx]
                if w_act is not None:
                    w_act = w_act[col_keep_idx]
                E_sub = machine.take_submatrix(E_sub, row_keep_idx, col_keep_idx)
                D_sub = machine.take_submatrix(D_sub, row_keep_idx, col_keep_idx)

            # 4(d): drop facilities whose reduced star price exceeds the cut.
            if w_act is None:
                wsum = machine.reduce(machine.where(E_sub, D_sub, 0.0), "add", axis=1)
                deg_now = machine.reduce(E_sub.astype(float), "add", axis=1)
            else:
                wsum = machine.reduce(
                    machine.where(
                        E_sub, machine.map(lambda d, ww: d * ww, D_sub, w_act[None, :]), 0.0
                    ),
                    "add",
                    axis=1,
                )
                deg_now = machine.reduce(
                    machine.where(E_sub, w_act[None, :], 0.0), "add", axis=1
                )
            fc = machine.take_rows(f_cur, adm)
            drop = machine.map(
                lambda dg, ws, fcv: (dg > 0) & ((fcv + ws) > cut * dg * _REL_TOL),
                deg_now,
                wsum,
                fc,
            )
            if drop.any():
                keep_idx = np.flatnonzero(~drop)
                adm = adm[keep_idx]
                E_sub = machine.take_rows(E_sub, keep_idx)
                D_sub = machine.take_rows(D_sub, keep_idx)

        if any_served:
            _compact_live_structure()

    return _build_solution(
        instance, machine, start, opened, alpha, gamma, tau_trace, preprocessed, eps
    )
