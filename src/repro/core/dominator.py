"""§3 — Dominator-set variants of maximal independent set.

``MaxDom(G)``: a maximal ``I ⊆ V`` such that no two chosen nodes are
adjacent or share a neighbor — i.e., a maximal independent set of the
square graph ``G²``. ``MaxUDom(H)``: for bipartite ``H = (U, V, E)``, a
maximal ``I ⊆ U`` with no common V-side neighbor — an MIS of ``H' =
(U, {uw : ∃z ∈ V, uz, zw ∈ E})``.

The §3 insight, reproduced exactly here: *never materialize* ``G²`` or
``H'`` (that costs matrix-multiplication work). Instead run Luby's
select step **in place**: draw random priorities, then propagate them
two hops by masked min-reductions over the original adjacency — a
constant number of basic matrix operations per round. Selected nodes
are priority-minima of their (closed) two-hop neighborhoods; they and
their square-graph neighbors leave the candidate pool, and the process
repeats for an expected ``O(log n)`` rounds (Lemma 3.1: ``O(|V|² log
|V|)`` work, ``O(log² |V|)`` depth).

Correctness subtlety encoded below: the two-hop propagation must relay
through *all* nodes of the graph — including nodes no longer candidates
— because ``G²``/``H'`` adjacency is defined by the original graph, so
a removed midpoint still connects two live candidates.

**Frontier compaction.** Only candidates carry finite priorities, so
every masked min above is really a reduction over the candidate rows of
the adjacency matrix: with ``compaction`` on (the default for
non-trivial graphs), rounds after the first gather those rows into a
``|candidates| × n`` strip and run the propagation there — per-round
work ``O(n·|candidates|)`` instead of ``O(n²)``, with bit-identical
selections (the reductions see exactly the same finite values and the
RNG stream is unchanged). Relays still pass through all ``n`` columns,
preserving the subtlety above.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.frontier import resolve_compaction
from repro.errors import ConvergenceError, InvalidParameterError
from repro.pram.machine import PramMachine, ensure_machine


def _as_adjacency(A: np.ndarray) -> np.ndarray:
    A = np.asarray(A, dtype=bool)
    if A.ndim != 2 or A.shape[0] != A.shape[1]:
        raise InvalidParameterError(f"adjacency must be square, got shape {A.shape}")
    if A.shape[0] and not np.array_equal(A, A.T):
        raise InvalidParameterError("adjacency must be symmetric (simple undirected graph)")
    if np.any(np.diagonal(A)):
        A = A.copy()
        np.fill_diagonal(A, False)
    return A


def _neighbor_min(machine: PramMachine, A: np.ndarray, values: np.ndarray) -> np.ndarray:
    """``out[i] = min_{j ∈ Γ(i)} values[j]`` — one distribute + masked min."""
    spread = machine.where(A, values[None, :], np.inf)
    return machine.reduce(spread, "min", axis=1)


def max_dominator_set(
    adjacency: np.ndarray,
    machine: PramMachine | None = None,
    *,
    backend=None,
    max_rounds: int | None = None,
    compaction: "bool | str" = "auto",
) -> np.ndarray:
    """Maximal dominator set of a simple graph (MIS of ``G²``), §3.

    Parameters
    ----------
    adjacency:
        Symmetric boolean matrix (diagonal ignored).
    machine:
        PRAM machine to execute/charge on; a fresh one if absent.
    backend:
        Execution backend name or instance for a freshly constructed
        machine; mutually exclusive with ``machine``. Selections are
        backend-invariant.
    max_rounds:
        Safety bound; defaults to ``n + 1`` (every round selects the
        globally minimum-priority candidate, so ≥ 1 node leaves per
        round). Expected rounds are ``O(log n)``.
    compaction:
        ``"auto"``, ``True``, or ``False`` — run each round on the
        candidate-row strip once the pool shrinks (see module
        docstring). Selections are identical either way.

    Returns
    -------
    numpy.ndarray
        Boolean selection mask over the nodes.
    """
    A = _as_adjacency(adjacency)
    n = A.shape[0]
    machine = ensure_machine(machine, backend=backend, size=n * n)
    if n == 0:
        return np.zeros(0, dtype=bool)
    limit = (n + 1) if max_rounds is None else int(max_rounds)
    compact = resolve_compaction(compaction, n * n)

    candidate = np.ones(n, dtype=bool)
    selected = np.zeros(n, dtype=bool)
    for _ in range(limit):
        if not candidate.any():
            return selected
        machine.bump_round("maxdom")
        pi = machine.random_priorities(n).astype(float)
        if compact and not candidate.all():
            # Candidate-strip round: gather the candidate rows once and
            # propagate over |cand| × n instead of n × n. Non-candidates
            # contribute only +inf to every masked min, so the strip
            # sees exactly the same finite values as the full matrix.
            cand_idx = np.flatnonzero(candidate)
            pim_c = machine.take_rows(pi, cand_idx)
            A_rows = machine.take_rows(A, cand_idx)
            # hop1[j] = min over candidate neighbors of j (A symmetric).
            hop1 = machine.reduce(
                machine.where(A_rows, pim_c[:, None], np.inf), "min", axis=0
            )
            val = machine.map(np.minimum, machine.where(candidate, pi, np.inf), hop1)
            hop2_c = machine.reduce(
                machine.where(A_rows, val[None, :], np.inf), "min", axis=1
            )
            sel_c = machine.map(
                lambda p, h: np.isfinite(p) & (p <= h), pim_c, hop2_c
            )
            sel_local = np.flatnonzero(sel_c)
            sel_idx = cand_idx[sel_local]
            selected[sel_idx] = True
            # Exclude the selected and everything within two hops.
            hop1_hit = (
                machine.reduce(machine.take_rows(A_rows, sel_local), "or", axis=0)
                if sel_idx.size
                else np.zeros(n, dtype=bool)
            )
            hop2_hit_c = machine.reduce(
                machine.where(A_rows, hop1_hit[None, :], False), "or", axis=1
            )
            candidate[cand_idx] = ~(sel_c | hop1_hit[cand_idx] | hop2_hit_c)
            machine.ledger.charge_basic("scatter", max(cand_idx.size, 1), depth=1)
            continue
        pim = machine.where(candidate, pi, np.inf)
        # Two-hop minimum with all nodes as relays (see module docstring):
        # hop1[j] = min over Γ(j); hop2[i] = min over Γ(i) of min(pim, hop1).
        hop1 = _neighbor_min(machine, A, pim)
        hop2 = _neighbor_min(machine, A, machine.map(np.minimum, pim, hop1))
        # i's own priority flows back through any neighbor, so hop2 ≤ pim
        # for non-isolated candidates; equality ⇔ strict two-hop minimum
        # (priorities are distinct). Isolated candidates see +inf ⇒ chosen.
        sel = machine.map(
            lambda c, p, h: c & np.isfinite(p) & (p <= h), candidate, pim, hop2
        )
        selected |= sel
        # Exclude the selected and everything within two hops of them.
        hop1_hit = machine.reduce(machine.where(A, sel[None, :], False), "or", axis=1)
        hop2_hit = machine.reduce(machine.where(A, hop1_hit[None, :], False), "or", axis=1)
        candidate = machine.map(
            lambda c, s, h1, h2: c & ~(s | h1 | h2), candidate, sel, hop1_hit, hop2_hit
        )
    if candidate.any():
        raise ConvergenceError(f"MaxDom exceeded {limit} rounds (n={n})")
    return selected


def max_u_dominator_set(
    biadjacency: np.ndarray,
    machine: PramMachine | None = None,
    *,
    backend=None,
    candidates: np.ndarray | None = None,
    max_rounds: int | None = None,
    compaction: "bool | str" = "auto",
) -> np.ndarray:
    """Maximal U-dominator set of a bipartite graph (MIS of ``H'``), §3.

    Parameters
    ----------
    biadjacency:
        ``|U| × |V|`` boolean incidence matrix.
    backend:
        Execution backend name or instance for a freshly constructed
        machine; mutually exclusive with ``machine``. Selections are
        backend-invariant.
    candidates:
        Optional mask restricting which U-nodes may be selected (the
        callers in §5/§6.2 run on subsets of a fixed graph); conflicts
        are still relayed through every V node.
    max_rounds:
        Safety bound, default ``|U| + 1``.
    compaction:
        ``"auto"``, ``True``, or ``False`` — run each round on the
        candidate rows of ``H`` once the pool shrinks (see module
        docstring). Selections are identical either way.

    Returns
    -------
    numpy.ndarray
        Boolean selection mask over U. U-nodes without any V-neighbor
        conflict with nobody and are always selected (if candidates).
    """
    B = np.asarray(biadjacency, dtype=bool)
    if B.ndim != 2:
        raise InvalidParameterError(f"biadjacency must be 2-D, got shape {B.shape}")
    machine = ensure_machine(machine, backend=backend, size=B.size)
    nu = B.shape[0]
    if nu == 0:
        return np.zeros(0, dtype=bool)
    candidate = (
        np.ones(nu, dtype=bool) if candidates is None else np.asarray(candidates, dtype=bool).copy()
    )
    if candidate.shape != (nu,):
        raise InvalidParameterError(
            f"candidates mask must have shape ({nu},), got {candidate.shape}"
        )
    limit = (nu + 1) if max_rounds is None else int(max_rounds)
    compact = resolve_compaction(compaction, B.size)

    selected = np.zeros(nu, dtype=bool)
    for _ in range(limit):
        if not candidate.any():
            return selected
        machine.bump_round("maxudom")
        pi = machine.random_priorities(nu).astype(float)
        if compact and not candidate.all():
            # Candidate-strip round over |cand| × |V|: non-candidate
            # rows only ever contribute +inf/False to the V-side
            # reductions, so the strip reproduces the full-matrix
            # selections exactly.
            cand_idx = np.flatnonzero(candidate)
            pim_c = machine.take_rows(pi, cand_idx)
            B_c = machine.take_rows(B, cand_idx)
            down = machine.reduce(
                machine.where(B_c, pim_c[:, None], np.inf), "min", axis=0
            )
            up_c = machine.reduce(
                machine.where(B_c, down[None, :], np.inf), "min", axis=1
            )
            sel_c = machine.map(
                lambda p, h: np.isfinite(p) & ((p <= h) | ~np.isfinite(h)),
                pim_c,
                up_c,
            )
            sel_local = np.flatnonzero(sel_c)
            selected[cand_idx[sel_local]] = True
            v_hit = (
                machine.reduce(machine.take_rows(B_c, sel_local), "or", axis=0)
                if sel_local.size
                else np.zeros(B.shape[1], dtype=bool)
            )
            u_conflict_c = machine.reduce(
                machine.where(B_c, v_hit[None, :], False), "or", axis=1
            )
            candidate[cand_idx] = ~(sel_c | u_conflict_c)
            machine.ledger.charge_basic("scatter", max(cand_idx.size, 1), depth=1)
            continue
        pim = machine.where(candidate, pi, np.inf)
        # down[v] = min priority among candidate U-neighbors of v;
        # up[u]   = min over v ∈ Γ(u) of down[v]  (covers u itself).
        down = machine.reduce(machine.where(B, pim[:, None], np.inf), "min", axis=0)
        up = machine.reduce(machine.where(B, down[None, :], np.inf), "min", axis=1)
        sel = machine.map(
            lambda c, p, h: c & np.isfinite(p) & ((p <= h) | ~np.isfinite(h)),
            candidate,
            pim,
            up,
        )
        selected |= sel
        # Conflict exclusion: U-nodes sharing a V-neighbor with a pick.
        v_hit = machine.reduce(machine.where(B, sel[:, None], False), "or", axis=0)
        u_conflict = machine.reduce(machine.where(B, v_hit[None, :], False), "or", axis=1)
        candidate = machine.map(
            lambda c, s, uc: c & ~(s | uc), candidate, sel, u_conflict
        )
    if candidate.any():
        raise ConvergenceError(f"MaxUDom exceeded {limit} rounds (|U|={nu})")
    return selected


def expected_round_bound(n: int) -> int:
    """Reference expected-round envelope ``O(log n)`` with an explicit
    constant (used by the T6 bench to report measured vs. bound)."""
    return max(1, math.ceil(4 * math.log2(max(n, 2)) + 8))
