"""Lemma 3.1 remark — sparse dominator sets in ``O(|E| log |V|)`` work.

The paper notes: *"For sparse matrices, which we do not use in this
paper, this can easily be improved to O(|E| log |V|) work."* This module
is that improvement: the same in-place Luby select step, but every
neighborhood reduction runs over a CSR adjacency in ``O(nnz)`` work
instead of ``O(n²)``.

The kernel is segmented minimum over the CSR row structure
(``np.minimum.reduceat``), i.e., a prefix-sum-style basic operation in
the §2 sense — charged as work ``|E|``, depth ``log n``.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.errors import ConvergenceError, InvalidParameterError
from repro.pram.machine import PramMachine


def _to_csr(adjacency) -> sparse.csr_matrix:
    if sparse.issparse(adjacency):
        A = adjacency.tocsr().astype(bool)
    else:
        A = sparse.csr_matrix(np.asarray(adjacency, dtype=bool))
    if A.shape[0] != A.shape[1]:
        raise InvalidParameterError(f"adjacency must be square, got {A.shape}")
    if (A != A.T).nnz != 0:
        raise InvalidParameterError("adjacency must be symmetric (simple undirected graph)")
    A = A.tolil()
    A.setdiag(False)
    return A.tocsr()


def _segmented_min(machine: PramMachine, A: sparse.csr_matrix, values: np.ndarray) -> np.ndarray:
    """``out[i] = min_{j ∈ Γ(i)} values[j]`` in O(nnz) work (+inf on
    isolated rows)."""
    n = A.shape[0]
    nnz = A.indptr[-1]
    if nnz == 0:
        return np.full(n, np.inf)
    gathered = np.append(values[A.indices], np.inf)
    starts = np.minimum(A.indptr[:-1], nnz)
    out = np.minimum.reduceat(gathered, starts)
    out[np.diff(A.indptr) == 0] = np.inf
    machine.ledger.charge_basic("sparse_neighbor_min", int(nnz))
    return out


def _neighbor_any(machine: PramMachine, A: sparse.csr_matrix, mask: np.ndarray) -> np.ndarray:
    """``out[i] = any(mask[Γ(i)])`` via a sparse matvec, O(nnz) work."""
    out = (A @ mask.astype(np.int8)) > 0
    machine.ledger.charge_basic("sparse_neighbor_any", max(int(A.indptr[-1]), 1))
    return out


def max_dominator_set_sparse(
    adjacency,
    machine: PramMachine | None = None,
    *,
    max_rounds: int | None = None,
) -> np.ndarray:
    """Sparse ``MaxDom`` — identical semantics to
    :func:`repro.core.dominator.max_dominator_set`, ``O(|E| log |V|)``
    work.

    Parameters
    ----------
    adjacency:
        scipy.sparse matrix or dense boolean array (symmetric).

    Returns
    -------
    numpy.ndarray
        Boolean selection mask: maximal, and independent in ``G²``.
    """
    machine = machine if machine is not None else PramMachine()
    A = _to_csr(adjacency)
    n = A.shape[0]
    if n == 0:
        return np.zeros(0, dtype=bool)
    limit = (n + 1) if max_rounds is None else int(max_rounds)

    candidate = np.ones(n, dtype=bool)
    selected = np.zeros(n, dtype=bool)
    for _ in range(limit):
        if not candidate.any():
            return selected
        machine.bump_round("maxdom_sparse")
        pi = machine.random_priorities(n).astype(float)
        pim = np.where(candidate, pi, np.inf)
        machine.ledger.charge_basic("map", n, depth=1)
        hop1 = _segmented_min(machine, A, pim)
        hop2 = _segmented_min(machine, A, np.minimum(pim, hop1))
        sel = candidate & np.isfinite(pim) & (pim <= hop2)
        machine.ledger.charge_basic("map", n, depth=1)
        selected |= sel
        hop1_hit = _neighbor_any(machine, A, sel)
        hop2_hit = _neighbor_any(machine, A, hop1_hit)
        candidate &= ~(sel | hop1_hit | hop2_hit)
        machine.ledger.charge_basic("map", n, depth=1)
    if candidate.any():
        raise ConvergenceError(f"sparse MaxDom exceeded {limit} rounds (n={n})")
    return selected
