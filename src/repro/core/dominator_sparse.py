"""Lemma 3.1 remark — sparse dominator sets in ``O(|E| log |V|)`` work.

The paper notes: *"For sparse matrices, which we do not use in this
paper, this can easily be improved to O(|E| log |V|) work."* This module
is that improvement: the same in-place Luby select step, but every
neighborhood reduction runs over a CSR adjacency in ``O(nnz)`` work
instead of ``O(n²)``.

The kernel is segmented minimum over the CSR row structure
(``np.minimum.reduceat``), i.e., a prefix-sum-style basic operation in
the §2 sense — charged as work ``|E|``, depth ``log n``.

**Frontier compaction.** Once the candidate pool shrinks, each round
only touches the candidate rows and their one-hop halo (the relay
nodes): the segmented reductions run over those rows' CSR segments, so
per-round work is ``O(n + nnz(frontier rows))`` instead of
``O(nnz)`` — the sparse counterpart of the dense candidate-strip
rounds in :mod:`repro.core.dominator`, with identical selections.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.core.frontier import resolve_compaction
from repro.errors import ConvergenceError, InvalidParameterError
from repro.pram.machine import PramMachine, ensure_machine
from repro.util.csr import csr_drop_diagonal, validate_csr


def _to_csr(adjacency) -> sparse.csr_matrix:
    if sparse.issparse(adjacency):
        A = adjacency.tocsr().astype(bool)
        # Explicit stored zeros are not edges: the dense variant sees
        # them as False, so the structural kernels below must too.
        A.eliminate_zeros()
    else:
        A = sparse.csr_matrix(np.asarray(adjacency, dtype=bool))
    if A.shape[0] != A.shape[1]:
        raise InvalidParameterError(f"adjacency must be square, got {A.shape}")
    if (A != A.T).nnz != 0:
        raise InvalidParameterError("adjacency must be symmetric (simple undirected graph)")
    # Diagonal cleanup stays in CSR (one O(nnz) mask) — the previous
    # LIL round-trip was an O(n·nnz) format conversion on large graphs.
    A = csr_drop_diagonal(A)
    A.sort_indices()
    validate_csr(A.indptr, A.indices, A.shape[1], name="adjacency", require_sorted=True)
    return A


def _segmented_min(machine: PramMachine, A: sparse.csr_matrix, values: np.ndarray) -> np.ndarray:
    """``out[i] = min_{j ∈ Γ(i)} values[j]`` in O(nnz) work (+inf on
    isolated rows)."""
    n = A.shape[0]
    nnz = A.indptr[-1]
    if nnz == 0:
        return np.full(n, np.inf)
    gathered = np.append(values[A.indices], np.inf)
    starts = np.minimum(A.indptr[:-1], nnz)
    out = np.minimum.reduceat(gathered, starts)
    out[np.diff(A.indptr) == 0] = np.inf
    machine.ledger.charge_basic("sparse_neighbor_min", int(nnz))
    return out


def _neighbor_any(machine: PramMachine, A: sparse.csr_matrix, mask: np.ndarray) -> np.ndarray:
    """``out[i] = any(mask[Γ(i)])`` via a sparse matvec, O(nnz) work."""
    out = (A @ mask.astype(np.int8)) > 0
    machine.ledger.charge_basic("sparse_neighbor_any", max(int(A.indptr[-1]), 1))
    return out


def _row_segments(A: sparse.csr_matrix, rows: np.ndarray):
    """CSR column indices of the given ``rows``, concatenated, plus the
    per-row lengths and segment starts (the frontier-rows gather)."""
    starts = A.indptr[rows]
    lens = A.indptr[rows + 1] - starts
    total = int(lens.sum())
    if total == 0:
        return None, lens, None
    seg = np.concatenate(([0], np.cumsum(lens)[:-1]))
    idx = np.arange(total) + np.repeat(starts - seg, lens)
    return A.indices[idx], lens, seg


def _segmented_min_rows(
    machine: PramMachine, A: sparse.csr_matrix, values: np.ndarray, rows: np.ndarray
) -> np.ndarray:
    """``out[r] = min_{j ∈ Γ(rows[r])} values[j]`` touching only the
    frontier rows' segments — ``O(nnz(rows))`` work."""
    cols, lens, seg = _row_segments(A, rows)
    if cols is None:
        machine.ledger.charge_basic("sparse_neighbor_min", max(rows.size, 1))
        return np.full(rows.size, np.inf)
    gathered = np.append(values[cols], np.inf)
    out = np.minimum.reduceat(gathered, seg)
    out[lens == 0] = np.inf
    machine.ledger.charge_basic("sparse_neighbor_min", int(cols.size))
    return out


def _neighbor_any_rows(
    machine: PramMachine, A: sparse.csr_matrix, mask: np.ndarray, rows: np.ndarray
) -> np.ndarray:
    """``out[r] = any(mask[Γ(rows[r])])`` over the frontier rows only."""
    cols, lens, seg = _row_segments(A, rows)
    if cols is None:
        machine.ledger.charge_basic("sparse_neighbor_any", max(rows.size, 1))
        return np.zeros(rows.size, dtype=bool)
    gathered = np.append(mask[cols], False)
    out = np.logical_or.reduceat(gathered, seg)
    out[lens == 0] = False
    machine.ledger.charge_basic("sparse_neighbor_any", int(cols.size))
    return out


def max_dominator_set_sparse(
    adjacency,
    machine: PramMachine | None = None,
    *,
    backend=None,
    max_rounds: int | None = None,
    compaction: "bool | str" = "auto",
) -> np.ndarray:
    """Sparse ``MaxDom`` — identical semantics to
    :func:`repro.core.dominator.max_dominator_set`, ``O(|E| log |V|)``
    work.

    Parameters
    ----------
    adjacency:
        scipy.sparse matrix or dense boolean array (symmetric).
    backend:
        Execution backend name or instance for a freshly constructed
        machine; mutually exclusive with ``machine``. Selections are
        backend-invariant.
    compaction:
        ``"auto"``, ``True``, or ``False`` — restrict each round to the
        candidate rows and their relay halo once the pool shrinks (see
        module docstring). Selections are identical either way.

    Returns
    -------
    numpy.ndarray
        Boolean selection mask: maximal, and independent in ``G²``.
    """
    A = _to_csr(adjacency)
    n = A.shape[0]
    machine = ensure_machine(machine, backend=backend, size=max(int(A.indptr[-1]), n))
    if n == 0:
        return np.zeros(0, dtype=bool)
    limit = (n + 1) if max_rounds is None else int(max_rounds)
    compact = resolve_compaction(compaction, max(int(A.indptr[-1]), n))

    candidate = np.ones(n, dtype=bool)
    selected = np.zeros(n, dtype=bool)
    for _ in range(limit):
        if not candidate.any():
            return selected
        machine.bump_round("maxdom_sparse")
        pi = machine.random_priorities(n).astype(float)
        if compact and not candidate.all():
            # Frontier round: candidate rows + their one-hop halo. The
            # halo relays priorities/hits exactly like the full pass —
            # any row outside it can neither select nor affect a
            # candidate this round.
            cand_idx = np.flatnonzero(candidate)
            pim = np.where(candidate, pi, np.inf)
            pim_c = pim[cand_idx]
            cols_c, _, _ = _row_segments(A, cand_idx)
            nbr_mask = np.zeros(n, dtype=bool)
            if cols_c is not None:
                nbr_mask[cols_c] = True
            nbr_idx = np.flatnonzero(nbr_mask)
            machine.ledger.charge_basic("map", n, depth=1)
            hop1 = np.full(n, np.inf)
            hop1[nbr_idx] = _segmented_min_rows(machine, A, pim, nbr_idx)
            hop2_c = _segmented_min_rows(machine, A, np.minimum(pim, hop1), cand_idx)
            sel_c = np.isfinite(pim_c) & (pim_c <= hop2_c)
            sel_idx = cand_idx[sel_c]
            selected[sel_idx] = True
            sel_mask = np.zeros(n, dtype=bool)
            sel_mask[sel_idx] = True
            hit_idx = np.flatnonzero(nbr_mask | candidate)
            hop1_hit = np.zeros(n, dtype=bool)
            hop1_hit[hit_idx] = _neighbor_any_rows(machine, A, sel_mask, hit_idx)
            hop2_hit_c = _neighbor_any_rows(machine, A, hop1_hit, cand_idx)
            candidate[cand_idx] = ~(sel_c | hop1_hit[cand_idx] | hop2_hit_c)
            machine.ledger.charge_basic("map", n, depth=1)
            continue
        pim = np.where(candidate, pi, np.inf)
        machine.ledger.charge_basic("map", n, depth=1)
        hop1 = _segmented_min(machine, A, pim)
        hop2 = _segmented_min(machine, A, np.minimum(pim, hop1))
        sel = candidate & np.isfinite(pim) & (pim <= hop2)
        machine.ledger.charge_basic("map", n, depth=1)
        selected |= sel
        hop1_hit = _neighbor_any(machine, A, sel)
        hop2_hit = _neighbor_any(machine, A, hop1_hit)
        candidate &= ~(sel | hop1_hit | hop2_hit)
        machine.ledger.charge_basic("map", n, depth=1)
    if candidate.any():
        raise ConvergenceError(f"sparse MaxDom exceeded {limit} rounds (n={n})")
    return selected


def max_u_dominator_set_sparse(
    biadjacency,
    machine: PramMachine | None = None,
    *,
    backend=None,
    candidates: np.ndarray | None = None,
    max_rounds: int | None = None,
) -> np.ndarray:
    """Sparse ``MaxUDom`` — identical semantics (and, on identically
    seeded machines, byte-identical selections) to
    :func:`repro.core.dominator.max_u_dominator_set`, in ``O(nnz)``
    work per round.

    Every round touches only the candidate rows' CSR segments: the
    V-side priority minimum is a :meth:`~repro.pram.machine.PramMachine.scatter_min`
    over those edges, and the U-side conflict relays are segmented
    min/or reductions over the same segments. Non-candidate rows never
    contribute anything but the operator identity in the dense
    formulation, so restricting to candidate segments reproduces the
    full-matrix selections exactly.

    Parameters
    ----------
    biadjacency:
        ``|U| × |V|`` scipy.sparse matrix or dense boolean array.
    candidates:
        Optional mask restricting which U-nodes may be selected (the
        §5 caller passes the tentatively open facilities).
    """
    if sparse.issparse(biadjacency):
        B = biadjacency.tocsr().astype(bool)
        # Explicit stored zeros are not edges (dense parity: a False
        # entry never relays a priority or a conflict).
        B.eliminate_zeros()
    else:
        B = sparse.csr_matrix(np.asarray(biadjacency, dtype=bool))
    nu, nv = B.shape
    machine = ensure_machine(machine, backend=backend, size=max(int(B.indptr[-1]), nu))
    if nu == 0:
        return np.zeros(0, dtype=bool)
    candidate = (
        np.ones(nu, dtype=bool)
        if candidates is None
        else np.asarray(candidates, dtype=bool).copy()
    )
    if candidate.shape != (nu,):
        raise InvalidParameterError(
            f"candidates mask must have shape ({nu},), got {candidate.shape}"
        )
    limit = (nu + 1) if max_rounds is None else int(max_rounds)
    indptr = np.asarray(B.indptr, dtype=np.intp)

    selected = np.zeros(nu, dtype=bool)
    for _ in range(limit):
        if not candidate.any():
            return selected
        machine.bump_round("maxudom")
        pi = machine.random_priorities(nu).astype(float)
        cand_idx = np.flatnonzero(candidate)
        pos, sub = machine.segment_positions(indptr, cand_idx)
        cols = machine.take_rows(np.asarray(B.indices, dtype=np.intp), pos)
        pim_c = machine.take_rows(pi, cand_idx)
        # down[v] = min priority among candidate U-neighbors of v;
        # up[u]   = min over v ∈ Γ(u) of down[v]  (covers u itself).
        down = machine.scatter_min(machine.segment_spread(pim_c, sub), cols, nv)
        up_c = machine.segmented_reduce(machine.take_rows(down, cols), sub, "min")
        sel_c = np.asarray(
            machine.map(lambda p, h: (p <= h) | ~np.isfinite(h), pim_c, up_c)
        )
        selected[cand_idx[sel_c]] = True
        # Conflict exclusion: candidates sharing a V-neighbor with a pick.
        sel_edge = machine.segment_spread(sel_c, sub)
        v_hit = machine.count_votes(cols, nv, mask=sel_edge) > 0
        u_conflict_c = np.asarray(
            machine.segmented_reduce(machine.take_rows(v_hit, cols), sub, "or")
        )
        candidate[cand_idx] = ~(sel_c | u_conflict_c)
        machine.ledger.charge_basic("scatter", max(cand_idx.size, 1), depth=1)
    if candidate.any():
        raise ConvergenceError(f"sparse MaxUDom exceeded {limit} rounds (|U|={nu})")
    return selected
