"""§6.1 k-center over sparse candidate structures.

The same Theorem 6.1 bottleneck search as :mod:`repro.core.kcenter`,
executed on a :class:`~repro.metrics.sparse.SparseClusteringInstance`:
the candidate thresholds are the sorted distinct *stored* distances
(one :meth:`~repro.pram.machine.PramMachine.sorted_unique` over the
``nnz`` values instead of ``n²``), and each probe builds the threshold
subgraph ``H_t`` by compacting the stored edge list (``d ≤ t``, off-
diagonal) into a CSR adjacency probed with
:func:`~repro.core.dominator_sparse.max_dominator_set_sparse` — the
Lemma 3.1 remark's ``O(|E| log |V|)`` execution.

**Parity.** On dense-representable instances the stored distances are
exactly the ``n²`` matrix entries, so the threshold sequence, the probe
schedule, and every dominator selection (exact min-relays over the same
edge set, same RNG stream) match the dense path — seeded solutions are
byte-identical.

**Coverage.** On truncated instances the largest stored threshold keeps
every stored edge; if even that graph needs more than ``k`` dominators
(a kNN truncation with too few neighbors cannot be covered by ``k``
centers at any stored radius), the probe search raises
:class:`~repro.errors.InfeasibleSolutionError` — a too-sparse candidate
graph fails loudly rather than returning a fallback-capped radius that
looks feasible. The 2-approximation guarantee transfers whenever the
truncation retains each node's edge to its optimal center (e.g. kNN
with enough neighbors to contain the optimal clusters).
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.core.dominator_sparse import max_dominator_set_sparse
from repro.core.result import ClusteringSolution
from repro.errors import InfeasibleSolutionError
from repro.metrics.sparse import SparseClusteringInstance
from repro.pram.machine import PramMachine


def _threshold_graph(
    machine: PramMachine,
    n: int,
    rows: np.ndarray,
    cols: np.ndarray,
    data: np.ndarray,
    offdiag: np.ndarray,
    t: float,
):
    """CSR adjacency of the threshold graph ``H_t`` (stored off-diagonal
    pairs with ``d ≤ t``) — one map + one pack over the edge list."""
    keep = np.asarray(machine.map(lambda d, od: od & (d <= t), data, offdiag))
    e_cols = machine.pack(cols, keep)
    counts = machine.count_votes(rows, n, mask=keep)
    indptr = np.concatenate(([0], np.cumsum(counts))).astype(np.intp)
    return sparse.csr_matrix(
        (np.ones(e_cols.size, dtype=bool), e_cols, indptr), shape=(n, n)
    )


def _parallel_kcenter_sparse(
    instance: SparseClusteringInstance, machine: PramMachine
) -> ClusteringSolution:
    """Sparse execution of the §6.1 bottleneck search (module docstring)."""
    n, k = instance.n, instance.k
    start = machine.snapshot()

    thresholds = machine.sorted_unique(instance.data)
    rows = instance.rows_flat()
    cols = instance.indices
    offdiag = np.asarray(machine.map(lambda r, c: r != c, rows, cols))

    lo, hi = 0, thresholds.size - 1
    probes = 0
    best_mask: np.ndarray | None = None
    best_t = float(thresholds[-1])

    while lo <= hi:
        mid = (lo + hi) // 2
        t = float(thresholds[mid])
        probes += 1
        machine.bump_round("kcenter_probe")
        H = _threshold_graph(machine, n, rows, cols, instance.data, offdiag, t)
        dom = max_dominator_set_sparse(H, machine)
        if int(dom.sum()) <= k:
            best_mask, best_t = dom, t
            hi = mid - 1
        else:
            lo = mid + 1

    if best_mask is None:
        # Mirror of the dense path's direct top probe — except that on a
        # truncated structure the largest stored threshold may genuinely
        # be uncoverable, which must fail loudly (see module docstring).
        t = float(thresholds[-1])
        probes += 1
        H = _threshold_graph(machine, n, rows, cols, instance.data, offdiag, t)
        dom = max_dominator_set_sparse(H, machine)
        if int(dom.sum()) > k:
            raise InfeasibleSolutionError(
                f"stored candidate graph needs {int(dom.sum())} centers at its "
                f"largest stored radius but k={k}: the truncation is too sparse "
                "for k-center coverage — rebuild the instance with more "
                "neighbors (knn_sparsify/knn_clustering_instance) or a larger "
                "radius (threshold_sparsify)"
            )
        best_mask, best_t = dom, t

    centers = np.flatnonzero(best_mask)
    return ClusteringSolution(
        centers=centers,
        cost=instance.kcenter_cost(centers),
        objective="kcenter",
        rounds=dict(machine.ledger.rounds),
        model_costs=machine.ledger.since(start),
        extra={"threshold": best_t, "probes": probes, "n_thresholds": int(thresholds.size)},
    )
