"""Solution objects returned by the core algorithms.

A solution is fundamentally just a facility/center set — Eq. (1) and
the §2 objectives are functions of that set alone (clients always
connect to the closest open facility). These dataclasses additionally
carry the measured model costs (from the PRAM ledger), round counters,
and any analysis artifacts (e.g., the dual vector α produced by the
greedy and primal–dual algorithms) that the tests and benchmarks
verify claims against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.pram.ledger import CostSnapshot


@dataclass
class FacilityLocationSolution:
    """Result of a facility-location algorithm.

    Attributes
    ----------
    opened:
        Sorted indices of open facilities.
    cost / facility_cost / connection_cost:
        Eq. (1) objective and its two parts, evaluated with
        closest-open-facility assignment.
    alpha:
        The dual vector constructed by the algorithm's analysis
        (greedy: τ at client-removal time; primal–dual: the raised
        duals), or ``None`` for algorithms without one.
    rounds:
        Named round counters (e.g., ``greedy_outer``,
        ``greedy_subselect``, ``pd_iterations``).
    model_costs:
        Work/depth/cache charged to the PRAM ledger during the run.
    extra:
        Algorithm-specific artifacts (documented per algorithm).
    """

    opened: np.ndarray
    cost: float
    facility_cost: float
    connection_cost: float
    alpha: np.ndarray | None = None
    rounds: dict = field(default_factory=dict)
    model_costs: CostSnapshot | None = None
    extra: dict = field(default_factory=dict)

    def __post_init__(self):
        self.opened = np.asarray(self.opened, dtype=int)


@dataclass
class ClusteringSolution:
    """Result of a k-median / k-means / k-center algorithm."""

    centers: np.ndarray
    cost: float
    objective: str
    rounds: dict = field(default_factory=dict)
    model_costs: CostSnapshot | None = None
    extra: dict = field(default_factory=dict)

    def __post_init__(self):
        self.centers = np.asarray(self.centers, dtype=int)
