"""§7 remark — parallel local search for facility location (extension).

The paper's closing remark in §7: *"there is a factor-3 approximation
local-search algorithm for facility location, in which a similar idea
can be used to perform each local-search step efficiently; however, we
do not know how to bound the number of rounds."*

This module implements exactly that: the Arya et al. / Korupolu et al.
local search over **add / drop / swap** moves with every candidate move
evaluated simultaneously via the same batched matrix machinery as
:mod:`repro.core.local_search`. Local optima of this neighborhood are
3-approximate (Arya et al. 2004; with the ``(1−β/·)`` threshold the
guarantee degrades to ``3+ε``). Because the paper gives no round bound,
``max_rounds`` here is an explicit safety parameter and the result
records whether the search converged — faithfully exposing the open
problem rather than papering over it.

Move evaluation per round (all through machine primitives):

* **add i′**: ``Δ = f_{i′} + Σ_j min(0, d(j,i′) − cur_j)``
* **drop i**: clients of ``i`` rebound to their second-nearest open
  facility: ``Δ = −f_i + Σ_{j: ϕ_j=i} (second_j − cur_j)``
* **swap (i → i′)**: ``Δ = f_{i′} − f_i + Σ_j min(base_i(j), d(j,i′)) − cost_conn``

with ``base_i(j)`` the drop-i service cost — the §7 trick verbatim.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.result import FacilityLocationSolution
from repro.errors import InvalidParameterError
from repro.metrics.instance import FacilityLocationInstance
from repro.pram.machine import PramMachine, ensure_machine
from repro.util.validation import check_epsilon


def _service_state(machine: PramMachine, D: np.ndarray, open_idx: np.ndarray):
    """Nearest/second-nearest open-facility distances per client."""
    nc = D.shape[1]
    Dc = machine.take_columns(D.T, open_idx).T  # (n_open, nc)
    near_pos = machine.argmin(Dc, axis=0)
    d1 = Dc[near_pos, np.arange(nc)]
    masked = Dc.copy()
    masked[near_pos, np.arange(nc)] = np.inf
    machine.ledger.charge_basic("map", Dc.size, depth=1)
    d2 = (
        machine.reduce(masked, "min", axis=0)
        if open_idx.size > 1
        else np.full(nc, np.inf)
    )
    return d1, d2, near_pos


def parallel_fl_local_search(
    instance: FacilityLocationInstance,
    *,
    epsilon: float = 0.1,
    machine: PramMachine | None = None,
    seed=None,
    backend=None,
    initial=None,
    max_rounds: int | None = None,
) -> FacilityLocationSolution:
    """Local-search facility location with parallel move evaluation.

    Parameters
    ----------
    epsilon:
        Improvement slack: a move is applied only if it improves the
        objective by a ``(1 − β/(n_f+1))`` factor, ``β = ε/(1+ε)``
        (local optima of the exact neighborhood are 3-approximate).
    backend:
        Execution backend name or instance for a freshly constructed
        machine; mutually exclusive with ``machine``. Seeded results
        agree across backends on every tested workload (pool
        backends may reassociate full float sum-reductions in the
        last ulp).
    initial:
        Starting facility set (defaults to the single facility
        minimizing the Eq. (1) objective alone — computable in one
        round of matrix operations).
    max_rounds:
        Safety bound on improvement rounds. The paper leaves the round
        count of this algorithm *open*; the default is a generous
        ``O((n_f/β)·log(n_c·spread))`` heuristic, and the returned
        solution's ``extra['converged']`` reports whether a local
        optimum was certified before the cap.

    Returns
    -------
    FacilityLocationSolution
        ``extra`` carries the move trace, convergence flag, and the
        initial cost.
    """
    eps = check_epsilon(epsilon, upper=1.0)
    machine = ensure_machine(machine, backend=backend, seed=seed, size=instance.m)
    D = instance.D
    f = instance.f.astype(float)
    nf, nc = D.shape
    beta = eps / (1.0 + eps)

    start = machine.snapshot()
    if initial is not None:
        open_mask = np.zeros(nf, dtype=bool)
        idx = np.unique(np.asarray(initial, dtype=int))
        if idx.size == 0 or idx.min() < 0 or idx.max() >= nf:
            raise InvalidParameterError(f"invalid initial facilities {initial!r}")
        open_mask[idx] = True
    else:
        # Best single facility: one reduction over the m matrix.
        totals = machine.map(
            lambda d, ff: d + ff, D, np.broadcast_to(f[:, None], D.shape)
        )
        single_costs = machine.reduce(totals, "add", axis=1) - (nc - 1) * f
        open_mask = np.zeros(nf, dtype=bool)
        open_mask[int(machine.argmin(single_costs))] = True

    def full_cost(mask: np.ndarray) -> float:
        idx = np.flatnonzero(mask)
        return float(f[idx].sum() + D[idx].min(axis=0).sum())

    cost = full_cost(open_mask)
    initial_cost = cost
    if max_rounds is not None:
        cap = max_rounds
    else:
        cap = 64 + math.ceil((nf / beta) * math.log(max(nc, 2) + 1))

    moves: list[tuple[str, int, int, float]] = []
    converged = False
    threshold = 1.0 - beta / (nf + 1)

    for _ in range(cap):
        machine.bump_round("fl_local_search")
        open_idx = np.flatnonzero(open_mask)
        closed_idx = np.flatnonzero(~open_mask)
        d1, d2, near_pos = _service_state(machine, D, open_idx)
        conn = float(machine.reduce(d1, "add"))
        fac = float(f[open_idx].sum())
        best_move = None  # (new_cost, kind, out_facility, in_facility)

        # ---- add moves (all closed facilities at once) ----
        if closed_idx.size:
            Dc = machine.take_columns(D.T, closed_idx).T  # (n_closed, nc)
            gain = machine.reduce(
                machine.map(
                    lambda dn, cur: np.minimum(0.0, dn - cur),
                    Dc,
                    np.broadcast_to(d1[None, :], Dc.shape),
                ),
                "add",
                axis=1,
            )
            add_costs = cost + f[closed_idx] + gain
            a = int(machine.argmin(add_costs))
            if best_move is None or add_costs[a] < best_move[0]:
                best_move = (float(add_costs[a]), "add", -1, int(closed_idx[a]))

        # ---- drop moves (all open facilities at once; keep ≥ 1 open) ----
        if open_idx.size > 1:
            rebound = machine.map(
                lambda np_, d2_, d1_, row: np.where(np_ == row, d2_, d1_),
                np.broadcast_to(near_pos[None, :], (open_idx.size, nc)),
                np.broadcast_to(d2[None, :], (open_idx.size, nc)),
                np.broadcast_to(d1[None, :], (open_idx.size, nc)),
                np.broadcast_to(np.arange(open_idx.size)[:, None], (open_idx.size, nc)),
            )
            drop_conn = machine.reduce(rebound, "add", axis=1)
            drop_costs = fac - f[open_idx] + drop_conn
            a = int(machine.argmin(drop_costs))
            if best_move is None or drop_costs[a] < best_move[0]:
                best_move = (float(drop_costs[a]), "drop", int(open_idx[a]), -1)

            # ---- swap moves (every open × closed pair) ----
            if closed_idx.size:
                Dc = machine.take_columns(D.T, closed_idx).T
                trial = machine.map(
                    np.minimum,
                    np.broadcast_to(
                        rebound[:, None, :], (open_idx.size, closed_idx.size, nc)
                    ),
                    np.broadcast_to(
                        Dc[None, :, :], (open_idx.size, closed_idx.size, nc)
                    ),
                )
                swap_conn = machine.reduce(trial, "add", axis=2)
                swap_costs = (
                    fac
                    - f[open_idx][:, None]
                    + f[closed_idx][None, :]
                    + swap_conn
                )
                flat = int(machine.argmin(swap_costs))
                a, b = np.unravel_index(flat, swap_costs.shape)
                if best_move is None or swap_costs[a, b] < best_move[0]:
                    best_move = (
                        float(swap_costs[a, b]),
                        "swap",
                        int(open_idx[a]),
                        int(closed_idx[b]),
                    )

        if best_move is None or best_move[0] >= threshold * cost:
            converged = True
            break
        new_cost, kind, out_f, in_f = best_move
        if kind in ("drop", "swap"):
            open_mask[out_f] = False
        if kind in ("add", "swap"):
            open_mask[in_f] = True
        cost = new_cost
        moves.append((kind, out_f, in_f, new_cost))

    opened_idx = np.flatnonzero(open_mask)
    return FacilityLocationSolution(
        opened=opened_idx,
        cost=instance.cost(opened_idx),
        facility_cost=instance.facility_cost(opened_idx),
        connection_cost=instance.connection_cost(opened_idx),
        alpha=None,
        rounds=dict(machine.ledger.rounds),
        model_costs=machine.ledger.since(start),
        extra={
            "initial_cost": initial_cost,
            "moves": moves,
            "converged": converged,
            "epsilon": eps,
        },
    )
