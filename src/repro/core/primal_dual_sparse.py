"""§5 primal–dual facility location over sparse candidate structures.

Algorithm 5.1 executed on a
:class:`~repro.metrics.sparse.SparseFacilityLocationInstance`: the
raise/freeze loop runs on the closed × unfrozen *candidate edge*
frontier, so per-iteration work is ``O(nnz(frontier))`` rather than a
function of ``n_f · n_c``. Absent entries contribute nothing to any
payment (they are not candidate connections); the instance's fallback
column acts as a virtual always-open facility at distance
``fallback_j``, which keeps every client freezable and the objective
well-defined on truncated instances. On dense-representable instances
(``fallback ≡ +inf``) the virtual facility is unreachable and the
execution mirrors the dense frontier-compacted path decision-for-
decision:

* ``paid_frozen`` folds each client's payment into its candidate
  facilities the iteration it freezes (``scatter_add`` over the
  client-major segments);
* ``dmin_open`` is seeded with the fallback column and refined with
  newly opened facilities' candidate edges only;
* ``H`` lives as a boolean mask over the instance's edge set (a
  facility's H-row is a subset of its candidate segment), and the §3
  postprocessing runs through
  :func:`repro.core.dominator_sparse.max_u_dominator_set_sparse`, which
  makes byte-identical selections to the dense ``MaxUDom`` on the same
  seeded machine.

The dual values ``α`` are schedule levels and exact minima — no
reassociated float sums feed them — so seeded sparse solutions are
byte-identical to the dense paths on every dense-representable workload
the equivalence suite runs (the same threshold-robustness caveat the
dense compacted path documents applies).
"""

from __future__ import annotations

import numpy as np

from repro.core.dominator_sparse import max_u_dominator_set_sparse
from repro.core.greedy_sparse import _sparse_gamma
from repro.core.result import FacilityLocationSolution
from repro.errors import ConvergenceError
from repro.metrics.sparse import SparseFacilityLocationInstance
from repro.pram.machine import PramMachine

_REL_TOL = 1.0 + 1e-12


def _parallel_primal_dual_sparse(
    instance: SparseFacilityLocationInstance,
    eps: float,
    machine: PramMachine,
    preprocess: bool,
    iter_cap: int,
) -> FacilityLocationSolution:
    """Sparse execution of Algorithm 5.1 (see module docstring)."""
    nf, nc = instance.n_facilities, instance.n_clients
    f = instance.f.astype(float)
    data, indices, indptr = instance.data, instance.indices, instance.indptr
    ct_indptr, ct_rows, ct_entry = instance.client_view
    m = max(instance.m, 2)
    # Client multiplicities scale each client's payment contribution
    # (see repro.core.primal_dual); None = exact unweighted code path.
    w = None if instance.has_unit_weights else instance.client_weights

    start = machine.snapshot()
    gamma = _sparse_gamma(machine, instance)
    base = gamma / (m * m) if gamma > 0 else 0.0

    alpha = np.zeros(nc, dtype=float)
    frozen = np.zeros(nc, dtype=bool)
    free_open = np.zeros(nf, dtype=bool)  # F0
    tent_open = np.zeros(nf, dtype=bool)  # F_T
    H_mask = np.zeros(instance.nnz, dtype=bool)
    paid_frozen = np.zeros(nf, dtype=float)
    # The fallback column is a virtual always-open facility: clients can
    # freeze against it even before anything real opens. On dense-
    # representable instances it is +inf and never fires.
    dmin_open = instance.fallback.astype(float).copy()
    fallback_live = bool(np.any(np.isfinite(dmin_open)))

    if preprocess or gamma == 0.0:
        pay0 = np.asarray(
            machine.map(lambda d: np.maximum(0.0, base * _REL_TOL - d), data)
        )
        if w is not None:
            pay0 = np.asarray(
                machine.map(lambda p, ww: p * ww, pay0, machine.take_rows(w, indices))
            )
        paid0 = machine.scatter_add(pay0, instance.rows_flat(), nf)
        free_open = np.asarray(machine.map(lambda p, ff: p >= ff / _REL_TOL, paid0, f))
        if free_open.any():
            near = np.asarray(
                machine.map(
                    lambda d, fo: fo & (d <= base * _REL_TOL),
                    data,
                    machine.take_rows(free_open, instance.rows_flat()),
                )
            )
            freely = machine.count_votes(indices, nc, mask=near) > 0
            frozen |= freely  # α stays 0 for freely connected clients
            fo_idx = np.flatnonzero(free_open)
            pos0, _ = machine.segment_positions(indptr, fo_idx)
            dnew = machine.scatter_min(
                machine.take_rows(data, pos0), machine.take_rows(indices, pos0), nc
            )
            dmin_open = np.asarray(machine.map(np.minimum, dmin_open, dnew))

    if gamma == 0.0:
        frozen[:] = True

    iterations = 0
    # The closed × unfrozen candidate-edge frontier is cached across
    # iterations, exactly like the dense compacted path: the geometric
    # schedule runs many levels where nothing opens or freezes.
    unfro = closed = fe_pos = fe_rlocal = fe_w = None
    frontier_dirty = True
    while not frozen.all():
        iterations += 1
        machine.bump_round("pd_iterations")
        if iterations > iter_cap:
            raise ConvergenceError(
                f"sparse primal–dual exceeded {iter_cap} iterations (m={m}, eps={eps})"
            )
        t = base * (1.0 + eps) ** (iterations - 1) if base > 0 else 0.0

        old_tent = np.flatnonzero(tent_open)
        if frontier_dirty:
            unfro = np.flatnonzero(~frozen)
            closed = np.flatnonzero(~(free_open | tent_open))
            pos, cl_indptr = machine.segment_positions(indptr, closed)
            ekeep = ~np.asarray(
                machine.take_rows(frozen, machine.take_rows(indices, pos))
            )
            fe_pos = machine.pack(pos, ekeep)
            fe_rlocal = machine.pack(
                machine.segment_spread(np.arange(closed.size), cl_indptr), ekeep
            )
            if w is not None:
                fe_w = np.asarray(
                    machine.take_rows(w, machine.take_rows(indices, fe_pos))
                )
            frontier_dirty = False

        # Step 1: raise unfrozen duals to the schedule level.
        alpha[unfro] = t
        machine.ledger.charge_basic("scatter", max(unfro.size, 1), depth=1)

        # Step 2: live payments over the frontier edges; frozen columns
        # are already folded into paid_frozen.
        live = machine.masked_axpy(
            -1.0, machine.take_rows(data, fe_pos), (1.0 + eps) * t, clamp_min=0.0
        )
        if w is not None:
            live = machine.map(lambda lv, ww: lv * ww, live, fe_w)
        paid = machine.map(
            lambda fr, lv: fr + lv,
            machine.take_rows(paid_frozen, closed),
            machine.scatter_add(np.asarray(live), fe_rlocal, closed.size),
        )
        openable = np.asarray(
            machine.map(lambda p, ff: p * _REL_TOL >= ff, paid, machine.take_rows(f, closed))
        )
        new_open = closed[openable]
        tent_open[new_open] = True
        frontier_dirty = frontier_dirty or new_open.size > 0
        machine.ledger.charge_basic("scatter", max(new_open.size, 1), depth=1)

        # Step 3: freeze unfrozen clients reaching any open facility
        # (real or fallback), via the maintained nearest-open distance.
        if new_open.size:
            pos2, _ = machine.segment_positions(indptr, new_open)
            dnew = machine.scatter_min(
                machine.take_rows(data, pos2), machine.take_rows(indices, pos2), nc
            )
            dmin_open = np.asarray(machine.map(np.minimum, dmin_open, dnew))
        newly_frozen = np.zeros(0, dtype=np.intp)
        if free_open.any() or tent_open.any() or fallback_live:
            reach = np.asarray(
                machine.map(
                    lambda a, dm: (1.0 + eps) * a * _REL_TOL >= dm,
                    alpha[unfro],
                    machine.take_rows(dmin_open, unfro),
                )
            )
            newly_frozen = unfro[reach]
            frozen[newly_frozen] = True
            frontier_dirty = frontier_dirty or newly_frozen.size > 0
            machine.ledger.charge_basic("scatter", max(newly_frozen.size, 1), depth=1)

        # Step 4: H edges — full candidate rows for newly opened
        # facilities, raised columns for the previously tentative ones.
        if new_open.size:
            pos2, _ = machine.segment_positions(indptr, new_open)
            H_mask[pos2] = np.asarray(
                machine.map(
                    lambda d, a: (1.0 + eps) * a > d,
                    machine.take_rows(data, pos2),
                    machine.take_rows(alpha, machine.take_rows(indices, pos2)),
                )
            )
        if old_tent.size and unfro.size:
            pos3, _ = machine.segment_positions(indptr, old_tent)
            # `unfro` is the iteration-start unfrozen set; rebuild the
            # mask from it (frozen may have advanced in step 3).
            um = np.zeros(nc, dtype=bool)
            um[unfro] = True
            H_mask[pos3] |= np.asarray(
                machine.map(
                    lambda d, u: u & ((1.0 + eps) * t > d),
                    machine.take_rows(data, pos3),
                    machine.take_rows(um, machine.take_rows(indices, pos3)),
                )
            )

        # Fold the payments of clients frozen this iteration into the
        # per-facility running totals (their α is now final).
        if newly_frozen.size:
            pos4, nf_indptr = machine.segment_positions(ct_indptr, newly_frozen)
            contrib = machine.masked_axpy(
                -1.0,
                machine.take_rows(data, machine.take_rows(ct_entry, pos4)),
                (1.0 + eps) * t,
                clamp_min=0.0,
            )
            if w is not None:
                contrib = machine.map(
                    lambda c, ww: c * ww,
                    contrib,
                    machine.segment_spread(w[newly_frozen], nf_indptr),
                )
            paid_frozen = np.asarray(
                machine.map(
                    lambda pf, c: pf + c,
                    paid_frozen,
                    machine.scatter_add(
                        np.asarray(contrib), machine.take_rows(ct_rows, pos4), nf
                    ),
                )
            )

        # Exhaustion rule: if every facility is open but clients remain
        # unfrozen, connect them directly (α_j = min over candidates,
        # capped by the fallback — all folded into dmin_open).
        if not frozen.all() and bool(np.all(free_open | tent_open)):
            still = np.flatnonzero(~frozen)
            alpha[still] = np.maximum(machine.take_rows(dmin_open, still), alpha[still])
            machine.ledger.charge_basic("scatter", max(still.size, 1), depth=1)
            frozen[:] = True
            tent_idx = np.flatnonzero(tent_open)
            if tent_idx.size and still.size:
                pos5, _ = machine.segment_positions(indptr, tent_idx)
                sm = np.zeros(nc, dtype=bool)
                sm[still] = True
                H_mask[pos5] |= np.asarray(
                    machine.map(
                        lambda d, s, a: s & ((1.0 + eps) * a > d),
                        machine.take_rows(data, pos5),
                        machine.take_rows(sm, machine.take_rows(indices, pos5)),
                        machine.take_rows(alpha, machine.take_rows(indices, pos5)),
                    )
                )

    return _finish_sparse(
        instance, machine, start, gamma, eps, alpha, free_open, tent_open, H_mask, f
    )


def _finish_sparse(
    instance: SparseFacilityLocationInstance,
    machine: PramMachine,
    start,
    gamma: float,
    eps: float,
    alpha: np.ndarray,
    free_open: np.ndarray,
    tent_open: np.ndarray,
    H_mask: np.ndarray,
    f: np.ndarray,
) -> FacilityLocationSolution:
    """§5 post-processing on the sparse contribution graph."""
    from scipy import sparse

    nf, nc = instance.n_facilities, instance.n_clients
    counts = machine.count_votes(instance.rows_flat(), nf, mask=H_mask)
    H_indptr = np.concatenate(([0], np.cumsum(counts))).astype(np.intp)
    H_cols = machine.pack(instance.indices, H_mask)
    H = sparse.csr_matrix(
        (np.ones(H_cols.size, dtype=bool), H_cols, H_indptr), shape=(nf, nc)
    )
    if tent_open.any():
        survivors = max_u_dominator_set_sparse(H, machine, candidates=tent_open)
    else:
        survivors = np.zeros(nf, dtype=bool)
    final_open = survivors | free_open
    if not final_open.any():
        # Only possible when no client can pay anything — open the
        # cheapest facility to return a valid solution shape.
        final_open[int(np.argmin(f))] = True

    opened_idx = np.flatnonzero(final_open)
    return FacilityLocationSolution(
        opened=opened_idx,
        cost=instance.cost(opened_idx),
        facility_cost=instance.facility_cost(opened_idx),
        connection_cost=instance.connection_cost(opened_idx),
        alpha=alpha,
        rounds=dict(machine.ledger.rounds),
        model_costs=machine.ledger.since(start),
        extra={
            "gamma": gamma,
            "F0": np.flatnonzero(free_open),
            "F_T": np.flatnonzero(tent_open),
            "I": np.flatnonzero(survivors),
            "H": H,
            "epsilon": eps,
        },
    )
