"""Lagrangian-relaxation k-median on top of the §5 LMP algorithm.

The paper emphasizes that its primal–dual algorithm preserves the
Lagrangian-multiplier property (LMP: ``3·Σf + Σd ≤ 3·opt``) *"enabling
[Jain–Vazirani] to use the algorithm as a subroutine in their
6-approximation algorithm for k-median"*. This module completes that
pipeline with the parallel LMP algorithm as the subroutine:

k-median has no facility costs but a budget ``k``; Lagrangian-relax the
budget by charging a uniform opening price ``λ`` and solving the
resulting facility-location instance with §5's algorithm. ``λ = 0``
opens everything; large ``λ`` opens one facility; binary search finds
the price where the LMP algorithm opens (about) ``k`` — those centers
are a k-median solution whose cost the LMP inequality relates to the
k-median optimum.

This implementation returns the best ``≤ k``-center solution met during
the search (the common practical variant). The textbook worst-case
constant additionally requires convexly combining the two bracketing
solutions when the search ends strictly between ``k₁ < k < k₂``; the
bracketing pair is returned in ``extra`` so callers can do so. Measured
quality on the bench workloads is far inside the JV factor either way.
"""

from __future__ import annotations

import numpy as np

from repro.core.primal_dual import parallel_primal_dual
from repro.core.result import ClusteringSolution
from repro.errors import InvalidParameterError
from repro.metrics.instance import ClusteringInstance, FacilityLocationInstance
from repro.metrics.sparse import SparseClusteringInstance, SparseFacilityLocationInstance
from repro.pram.machine import PramMachine, ensure_machine
from repro.util.validation import check_epsilon, check_positive_int


def _solve_at_price(instance: ClusteringInstance, lam: float, eps: float, machine: PramMachine):
    """Run the LMP primal–dual with uniform opening price λ.

    Sparse clustering instances relax to a sparse facility-location
    instance over the same candidate structure (every node a facility
    at price λ, same fallback column), which the §5 entry point then
    executes on its ``O(nnz)`` path.
    """
    weights = None if instance.has_unit_weights else instance.weights
    if isinstance(instance, SparseClusteringInstance):
        fl = SparseFacilityLocationInstance(
            instance.indptr,
            instance.indices,
            instance.data,
            np.full(instance.n, lam),
            n_clients=instance.n,
            fallback=instance.fallback,
            client_weights=weights,
        )
    else:
        fl = FacilityLocationInstance(
            instance.D, np.full(instance.n, lam), client_weights=weights
        )
    sol = parallel_primal_dual(fl, epsilon=eps, machine=machine)
    return sol


def _price_ceiling(instance: ClusteringInstance) -> float:
    """λ ceiling: ``(W+1) ×`` the largest finite service distance,
    where ``W = Σ_j w_j`` is the total demand (``n`` when unweighted).

    At this price a single facility serving everyone beats any second
    opening: closing a facility moves at most ``W`` units of demand by
    at most ``dmax`` each. The multiplicative form (no additive
    constant) keeps the probe sequence exactly covariant under distance
    scaling, so seeded runs on ``c·d`` return the scaled solution
    bit-for-bit when ``c`` is a power of two — the scale-equivariance
    the metamorphic suite asserts. Unit weights give exactly the
    historical ``(n+1)`` factor.
    """
    if isinstance(instance, SparseClusteringInstance):
        dmax = float(instance.data.max()) if instance.nnz else 0.0
        finite_fb = instance.fallback[np.isfinite(instance.fallback)]
        if finite_fb.size:
            dmax = max(dmax, float(finite_fb.max()))
    else:
        dmax = float(instance.D.max())
    spread = (instance.n + 1) if instance.has_unit_weights else (instance.total_weight + 1.0)
    return (dmax if dmax > 0 else 1.0) * spread


def parallel_kmedian_lagrangian(
    instance: ClusteringInstance,
    *,
    epsilon: float = 0.1,
    machine: PramMachine | None = None,
    seed=None,
    backend=None,
    max_probes: int = 40,
) -> ClusteringSolution:
    """k-median via Lagrangian relaxation of the facility budget.

    Parameters
    ----------
    epsilon:
        Slack passed through to the §5 primal–dual subroutine.
    backend:
        Execution backend name or instance for a freshly constructed
        machine; mutually exclusive with ``machine``. Seeded results
        agree across backends on every tested workload (pool
        backends may reassociate full float sum-reductions in the
        last ulp).
    max_probes:
        Binary-search probes over the price λ (each probe is one full
        primal–dual run; 40 resolves λ to ~2⁻⁴⁰ of its range).

    Returns
    -------
    ClusteringSolution
        Best ``≤ k`` solution encountered. ``extra`` carries the probe
        trace and the bracketing (λ, facility-count, centers) pair for
        callers wanting the convex-combination rounding.

    Notes
    -----
    ``instance`` may also be a
    :class:`~repro.metrics.sparse.SparseClusteringInstance`; each probe
    then runs the §5 primal–dual on the candidate-edge structure in
    ``O(nnz)`` work per round, with byte-identical seeded solutions to
    the dense path on dense-representable instances.
    """
    eps = check_epsilon(epsilon)
    check_positive_int(max_probes, name="max_probes")
    size = instance.m if isinstance(instance, SparseClusteringInstance) else instance.D.size
    machine = ensure_machine(machine, backend=backend, seed=seed, size=size)
    n, k = instance.n, instance.k
    if k >= n:
        centers = np.arange(n)
        return ClusteringSolution(
            centers=centers, cost=0.0, objective="kmedian",
            rounds=dict(machine.ledger.rounds), extra={"probes": []},
        )

    start = machine.snapshot()
    # λ range: at 0 every node can open freely; at the ceiling a single
    # facility always wins.
    lo, hi = 0.0, _price_ceiling(instance)
    best_centers: np.ndarray | None = None
    best_cost = np.inf
    trace: list[dict] = []
    bracket_low = bracket_high = None  # (lam, n_open, centers)

    for _ in range(max_probes):
        lam = 0.5 * (lo + hi)
        machine.bump_round("lagrangian_probe")
        sol = _solve_at_price(instance, lam, eps, machine)
        n_open = sol.opened.size
        cost = instance.kmedian_cost(sol.opened) if n_open <= k else np.inf
        trace.append({"lambda": lam, "n_open": n_open})
        if n_open <= k:
            if cost < best_cost:
                best_cost, best_centers = cost, sol.opened
            bracket_low = (lam, n_open, sol.opened)
            hi = lam  # cheaper price → more facilities → approach k from below
        else:
            bracket_high = (lam, n_open, sol.opened)
            lo = lam
        if n_open == k:
            break

    if best_centers is None:
        # Price ceiling guarantees ≤ k eventually; reaching here means
        # max_probes was too small for this spread.
        raise InvalidParameterError(
            f"no ≤ k solution within {max_probes} probes; increase max_probes"
        )
    return ClusteringSolution(
        centers=best_centers,
        cost=float(best_cost),
        objective="kmedian",
        rounds=dict(machine.ledger.rounds),
        model_costs=machine.ledger.since(start),
        extra={
            "probes": trace,
            "bracket_low": bracket_low,
            "bracket_high": bracket_high,
            "epsilon": eps,
        },
    )
