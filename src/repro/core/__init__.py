"""The paper's contribution: parallel approximation algorithms (§3–§7).

Every algorithm here is expressed in the §2 vocabulary of basic matrix
operations executed on a :class:`repro.pram.PramMachine`, so its
work/depth/cache in the paper's model is measured, not asserted:

* :func:`max_dominator_set` / :func:`max_u_dominator_set` — §3
  dominator-set variants of maximal independent set (Lemma 3.1).
* :func:`parallel_greedy` — §4 greedy facility location, the
  ``(3.722+ε)``-approximation (proven ``6+ε`` without the
  factor-revealing LP), Theorem 4.9.
* :func:`parallel_primal_dual` — §5 primal–dual facility location, the
  ``(3+ε)``-approximation, Theorem 5.4.
* :func:`parallel_kcenter` — §6.1 Hochbaum–Shmoys-style k-center
  2-approximation, Theorem 6.1.
* :func:`parallel_lp_rounding` — §6.2 filtering + randomized rounding,
  the ``(4+ε)``-approximation given an optimal LP solution, Theorem 6.5.
* :func:`parallel_local_search` — §7 local search for k-median
  (``5+ε``) and k-means (``81+ε``), Theorem 7.1.

Extensions the paper sketches but leaves open (implemented here, with
their caveats documented in-module):

* :func:`parallel_fl_local_search` — the §7-remark local search for
  facility location (round count open in the paper).
* :func:`max_dominator_set_sparse` — the Lemma 3.1 remark:
  ``O(|E| log |V|)``-work dominator sets on sparse graphs.
* :func:`parallel_kmedian_lagrangian` — the Jain–Vazirani k-median
  pipeline the §5 LMP property exists to enable.

Every solver dispatches transparently on sparse instances: facility
location on :class:`~repro.metrics.sparse.SparseFacilityLocationInstance`
(§4/§5) and clustering on
:class:`~repro.metrics.sparse.SparseClusteringInstance` (§6.1/§7 —
:mod:`repro.core.kcenter_sparse`, :mod:`repro.core.local_search_sparse`),
so the paper's input-size parameter ``m`` is the candidate-edge count on
every algorithm in the repo.
"""

from repro.core.result import ClusteringSolution, FacilityLocationSolution
from repro.core.dominator import max_dominator_set, max_u_dominator_set
from repro.core.dominator_sparse import max_dominator_set_sparse, max_u_dominator_set_sparse
from repro.core.stars import cheapest_star_prices_masked, presort_distances, star_members
from repro.core.greedy import parallel_greedy
from repro.core.primal_dual import parallel_primal_dual
from repro.core.kcenter import parallel_kcenter
from repro.core.lp_rounding import parallel_lp_rounding
from repro.core.local_search import parallel_kmeans, parallel_kmedian, parallel_local_search
from repro.core.fl_local_search import parallel_fl_local_search
from repro.core.kmedian_lagrangian import parallel_kmedian_lagrangian

__all__ = [
    "FacilityLocationSolution",
    "ClusteringSolution",
    "max_dominator_set",
    "max_u_dominator_set",
    "max_dominator_set_sparse",
    "max_u_dominator_set_sparse",
    "presort_distances",
    "cheapest_star_prices_masked",
    "star_members",
    "parallel_greedy",
    "parallel_primal_dual",
    "parallel_kcenter",
    "parallel_lp_rounding",
    "parallel_local_search",
    "parallel_kmedian",
    "parallel_kmeans",
    "parallel_fl_local_search",
    "parallel_kmedian_lagrangian",
]
