"""§6.1 — Parallel Hochbaum–Shmoys k-center (Theorem 6.1).

Binary search over the ``p ≤ n²`` distinct pairwise distances; each
probe builds the threshold graph ``H_t`` (edge ⇔ ``d ≤ t``) in one
basic matrix operation and tests ``|MaxDom(H_t)| ≤ k`` with the §3
dominator-set algorithm. The smallest passing threshold yields centers
covering every node within two hops, i.e., radius ``≤ 2t ≤ 2·opt``.

Correctness with a *randomized* probe inside binary search (noted in
DESIGN.md): for any ``t ≥ opt`` **every** maximal dominator set has at
most ``k`` nodes (two chosen nodes in one optimal cluster would be two
hops apart through its center), so all failures lie strictly below
``opt``; the search therefore returns a threshold ``≤ opt`` no matter
which maximal set each probe samples. Total work
``O((n log n)²)`` — the improvement over Wang–Cheng's ``O(n³)``.
"""

from __future__ import annotations

import numpy as np

from repro.core.dominator import max_dominator_set
from repro.core.result import ClusteringSolution
from repro.metrics.instance import ClusteringInstance
from repro.metrics.sparse import SparseClusteringInstance
from repro.pram.machine import PramMachine, ensure_machine


def parallel_kcenter(
    instance: ClusteringInstance,
    *,
    machine: PramMachine | None = None,
    seed=None,
    backend=None,
) -> ClusteringSolution:
    """2-approximate k-center via parallel bottleneck search.

    Returns
    -------
    ClusteringSolution
        ``centers`` (≤ k of them), the achieved bottleneck ``cost``,
        round counters (``kcenter_probe`` per probe plus the dominator
        rounds), and ``extra = {threshold, probes}``.

    Notes
    -----
    ``instance`` may also be a
    :class:`~repro.metrics.sparse.SparseClusteringInstance`; the binary
    search then runs over the *stored* distinct distances and each
    probe is a :func:`~repro.core.dominator_sparse.max_dominator_set_sparse`
    over the threshold subgraph — ``O(nnz)`` work per probe round
    (:mod:`repro.core.kcenter_sparse`), with byte-identical seeded
    solutions on dense-representable instances. If the stored graph is
    too sparse for ``k`` centers to cover it (e.g. a kNN truncation
    with too few neighbors), the sparse path raises
    :class:`~repro.errors.InfeasibleSolutionError` instead of returning
    a silently-capped radius.

    Weighted instances (node multiplicities) need no special handling:
    the bottleneck objective is weight-invariant — the farthest of
    ``w_j`` co-located copies is the copy itself — so the search runs
    identically and the 2-approximation guarantee is unchanged.
    """
    if isinstance(instance, SparseClusteringInstance):
        from repro.core.kcenter_sparse import _parallel_kcenter_sparse

        machine = ensure_machine(machine, backend=backend, seed=seed, size=instance.m)
        return _parallel_kcenter_sparse(instance, machine)
    machine = ensure_machine(machine, backend=backend, seed=seed, size=instance.D.size)
    D, k, n = instance.D, instance.k, instance.n
    start = machine.snapshot()

    # Candidate thresholds: the sorted distinct distances (§6.1 computes
    # this sequence once up front, as a single sorted-unique primitive).
    flat = machine.map(np.ravel, D)
    thresholds = machine.sorted_unique(flat)

    lo, hi = 0, thresholds.size - 1
    probes = 0
    best_mask: np.ndarray | None = None
    best_t = float(thresholds[-1])

    while lo <= hi:
        mid = (lo + hi) // 2
        t = float(thresholds[mid])
        probes += 1
        machine.bump_round("kcenter_probe")
        adjacency = machine.map(lambda d: d <= t, D)
        np.fill_diagonal(adjacency, False)
        dom = max_dominator_set(adjacency, machine)
        if int(dom.sum()) <= k:
            best_mask, best_t = dom, t
            hi = mid - 1
        else:
            lo = mid + 1

    if best_mask is None:
        # The largest threshold makes the graph complete: any single node
        # dominates, so some probe must pass; reaching here means the
        # binary search never probed the top index — probe it directly.
        t = float(thresholds[-1])
        adjacency = machine.map(lambda d: d <= t, D)
        np.fill_diagonal(adjacency, False)
        best_mask, best_t = max_dominator_set(adjacency, machine), t
        probes += 1

    centers = np.flatnonzero(best_mask)
    return ClusteringSolution(
        centers=centers,
        cost=instance.kcenter_cost(centers),
        objective="kcenter",
        rounds=dict(machine.ledger.rounds),
        model_costs=machine.ledger.since(start),
        extra={"threshold": best_t, "probes": probes, "n_thresholds": int(thresholds.size)},
    )
