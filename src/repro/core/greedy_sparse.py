"""§4 greedy facility location over sparse candidate structures.

The same Algorithm 4.1 as :mod:`repro.core.greedy`, executed on a
:class:`~repro.metrics.sparse.SparseFacilityLocationInstance`: every
per-round computation runs over CSR segments of the *candidate* edges,
so work per round is ``O(nnz(frontier rows))`` — the paper's input-size
parameter ``m`` is the edge count here, exactly as the Lemma 3.1 remark
("for sparse matrices … this can easily be improved") invites.

Structure mirrors the frontier-compacted dense path one-for-one:

* the live sorted structure holds each facility's *remaining* candidate
  clients ascending by distance, packed after every removal round;
* star prices are a segmented prefix sum + segmented min over it
  (:meth:`~repro.pram.machine.PramMachine.segmented_scan` /
  :meth:`~repro.pram.machine.PramMachine.segmented_reduce`);
* the subselection graph is an explicit edge list (local facility id,
  client id, distance) carved by a frontier-restricted segment gather
  and compacted in place; votes, degrees, and neighborhood sums are
  ``count_votes`` / ``scatter_add`` combines over it.

**Parity.** On dense-representable instances the live structure keeps
uniform segment lengths throughout the run (every facility's segment
contains every active client), so every segmented primitive takes its
rectangular fast path — bit-identical arithmetic to the dense compacted
kernels. Seeded solutions are therefore byte-identical to both dense
paths; the RNG stream is preserved by drawing the subselection
permutation over the full facility set each round, exactly as the dense
paths do. Clients with no candidate facility are never active: they pay
their fallback cost in the objective regardless of what opens, and
their dual ``α`` stays 0.
"""

from __future__ import annotations

import numpy as np

from repro.core.greedy import _REL_TOL, _build_solution
from repro.errors import ConvergenceError
from repro.metrics.sparse import SparseFacilityLocationInstance
from repro.pram.machine import PramMachine


def _sparse_gamma(machine: PramMachine, inst: SparseFacilityLocationInstance) -> float:
    """Eq. (2) bound ``γ = max_j min(fallback_j, min_i (f_i + d(j,i)))``
    over candidate edges only — ``O(nnz)`` work."""
    rows = inst.rows_flat()
    total = machine.map(
        lambda d, fe: d + fe, inst.data, machine.take_rows(inst.f.astype(float), rows)
    )
    gamma_j = machine.scatter_min(total, inst.indices, inst.n_clients)
    gamma_j = machine.map(np.minimum, gamma_j, inst.fallback)
    return float(machine.reduce(gamma_j, "max"))


def _star_prices_sparse(
    machine: PramMachine,
    live_d: np.ndarray,
    live_indptr: np.ndarray,
    f_cur: np.ndarray,
    live_w: np.ndarray | None = None,
) -> np.ndarray:
    """Cheapest-maximal-star price per facility over the live sorted
    structure: ``min_k (f_i + Σ of k closest remaining distances)/k``,
    ``+inf`` for facilities with no remaining candidate.

    One segmented scan, one map, one segmented min — ``O(nnz(live))``.
    On uniform segments this is bit-identical to
    :func:`repro.core.stars.cheapest_star_prices_compact`.

    ``live_w`` (per-edge client weights in the same layout, weighted
    instances only) switches the price to ``(f_i + Σ w·d) / Σ w`` over
    each ascending-distance prefix.
    """
    if live_w is not None:
        psum = machine.segmented_scan(
            np.asarray(machine.map(np.multiply, live_d, live_w)), live_indptr, "add"
        )
        rank = machine.segmented_scan(live_w, live_indptr, "add")
        fc = machine.segment_spread(np.asarray(f_cur, dtype=float), live_indptr)
        candidate = machine.map(
            lambda p, r, ff: (ff + p) / np.where(r > 0, r, 1.0), psum, rank, fc
        )
        return machine.segmented_reduce(candidate, live_indptr, "min")
    starts = machine.segment_spread(live_indptr[:-1].astype(float), live_indptr)
    psum = machine.segmented_scan(live_d, live_indptr, "add")
    rank = machine.map(
        lambda p, s: p - s + 1.0, np.arange(live_d.size, dtype=float), starts
    )
    fc = machine.segment_spread(np.asarray(f_cur, dtype=float), live_indptr)
    candidate = machine.map(lambda p, r, ff: (ff + p) / r, psum, rank, fc)
    return machine.segmented_reduce(candidate, live_indptr, "min")


def _compact_live(
    machine: PramMachine,
    l_cols: np.ndarray,
    l_d: np.ndarray,
    l_indptr: np.ndarray,
    active: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Drop inactive clients from the live sorted structure (the sparse
    :func:`repro.core.stars.compact_sorted_columns`) — ``O(nnz(live))``."""
    nf = l_indptr.size - 1
    keep = np.asarray(machine.map(lambda ids: active[ids], l_cols))
    counts = machine.count_votes(
        machine.segment_spread(np.arange(nf), l_indptr), nf, mask=keep
    )
    l_cols = machine.pack(l_cols, keep)
    l_d = machine.pack(l_d, keep)
    l_indptr = np.concatenate(([0], np.cumsum(counts))).astype(np.intp)
    return l_cols, l_d, l_indptr


def _pack_edges(machine, keep, *edge_arrays):
    """Compact every per-edge array by the same boolean mask."""
    return tuple(machine.pack(arr, keep) for arr in edge_arrays)


def _parallel_greedy_sparse(
    instance: SparseFacilityLocationInstance,
    eps: float,
    machine: PramMachine,
    preprocess: bool,
    outer_cap: int,
    sub_cap: int,
):
    """Sparse execution of Algorithm 4.1 (see module docstring)."""
    nf, nc = instance.n_facilities, instance.n_clients
    f_cur = instance.f.astype(float).copy()
    m = max(instance.m, 2)
    # Client multiplicities generalize star prices to (f + Σwd)/Σw and
    # degrees/votes to weighted sums (see repro.core.greedy); None
    # keeps the exact unweighted code path.
    w = None if instance.has_unit_weights else instance.client_weights

    start = machine.snapshot()
    # One-time presort of each facility's candidate segment by distance
    # (the §4 "single sort in the preprocessing").
    perm = machine.argsort_segments(instance.data, instance.indptr)
    l_d = machine.take_rows(instance.data, perm)
    l_cols = machine.take_rows(instance.indices, perm)
    l_indptr = np.asarray(instance.indptr, dtype=np.intp)

    covered = np.zeros(nc, dtype=bool)
    covered[instance.indices] = True
    active = covered.copy()  # clients with no candidate pay fallback; never active
    opened = np.zeros(nf, dtype=bool)
    alpha = np.zeros(nc, dtype=float)
    tau_trace: list[float] = []
    gamma = _sparse_gamma(machine, instance)
    preprocessed = 0

    if preprocess:
        l_w = None if w is None else np.asarray(machine.take_rows(w, l_cols))
        prices = _star_prices_sparse(machine, l_d, l_indptr, f_cur, l_w)
        threshold = gamma / (m * m)
        pre_open = np.asarray(machine.map(lambda p: p <= threshold * _REL_TOL, prices))
        if pre_open.any():
            rows = instance.rows_flat()
            member = np.asarray(
                machine.map(
                    lambda d, p, po: po & (d <= p * _REL_TOL),
                    instance.data,
                    machine.take_rows(prices, rows),
                    machine.take_rows(pre_open, rows),
                )
            )
            served = machine.count_votes(instance.indices, nc, mask=member) > 0
            opened |= pre_open
            f_cur = np.asarray(machine.where(pre_open, 0.0, f_cur))
            active &= ~served
            preprocessed = int(served.sum())
            if preprocessed:
                l_cols, l_d, l_indptr = _compact_live(
                    machine, l_cols, l_d, l_indptr, active
                )

    while active.any():
        outer = machine.bump_round("greedy_outer")
        if outer > outer_cap:
            raise ConvergenceError(
                f"sparse greedy exceeded {outer_cap} outer rounds (m={m}, eps={eps})"
            )
        l_w = None if w is None else np.asarray(machine.take_rows(w, l_cols))
        prices = _star_prices_sparse(machine, l_d, l_indptr, f_cur, l_w)
        tau = float(machine.reduce(prices, "min"))
        tau_trace.append(tau)
        cut = tau * (1.0 + eps) * _REL_TOL

        # Subselection graph: admitted facilities' candidate edges with
        # d ≤ cut (the live structure already holds only active clients).
        adm = np.flatnonzero(np.asarray(machine.map(lambda p: p <= cut, prices)))
        pos, sub_indptr = machine.segment_positions(l_indptr, adm)
        e_d = machine.take_rows(l_d, pos)
        e_col = machine.take_rows(l_cols, pos)
        e_row = machine.segment_spread(np.arange(adm.size), sub_indptr)
        keep = np.asarray(machine.map(lambda d: d <= cut, e_d))
        e_d, e_col, e_row = _pack_edges(machine, keep, e_d, e_col, e_row)
        any_served = False

        sub = 0
        while True:
            if w is None:
                deg = machine.count_votes(e_row, adm.size).astype(float)
            else:
                deg = np.asarray(
                    machine.scatter_add(
                        np.asarray(machine.take_rows(w, e_col)), e_row, adm.size
                    )
                )
            row_keep = np.asarray(machine.map(lambda dg: dg > 0, deg))
            if not row_keep.all():
                # Empty rows have no edges, so only the labels compress.
                relabel = np.cumsum(row_keep) - 1
                adm = adm[row_keep]
                deg = deg[row_keep]
                e_row = machine.take_rows(relabel, e_row) if e_row.size else e_row
            if adm.size == 0:
                break
            sub += 1
            machine.bump_round("greedy_subselect")
            if sub > sub_cap:
                raise ConvergenceError(
                    f"sparse greedy subselection exceeded {sub_cap} rounds "
                    f"(m={m}, eps={eps})"
                )

            # 4(a–b): permutation over *all* facilities (RNG parity with
            # the dense paths); each client votes for its minimum-
            # priority admitted neighbor.
            Pi = machine.random_priorities(nf).astype(float)
            pi_adm = machine.take_rows(Pi, adm)
            pi_edge = machine.take_rows(pi_adm, e_row)
            minpri = machine.scatter_min(pi_edge, e_col, nc)
            vote_edge = np.asarray(
                machine.map(
                    lambda pe, mp: pe == mp, pi_edge, machine.take_rows(minpri, e_col)
                )
            )

            # 4(c): votes per facility (priorities are distinct, so each
            # client with an edge contributes exactly one — weighted —
            # vote).
            if w is None:
                votes = machine.count_votes(e_row, adm.size, mask=vote_edge).astype(float)
            else:
                e_w = np.asarray(machine.take_rows(w, e_col))
                votes = np.asarray(
                    machine.scatter_add(np.where(vote_edge, e_w, 0.0), e_row, adm.size)
                )
            open_now = np.asarray(
                machine.map(
                    lambda v, dg: (dg > 0)
                    & (v * (2.0 * (1.0 + eps)) >= dg * (1.0 - 1e-12)),
                    votes,
                    deg,
                )
            )
            if open_now.any():
                open_edge = np.asarray(machine.take_rows(open_now, e_row))
                served = machine.count_votes(e_col, nc, mask=open_edge) > 0
                opened_ids = adm[open_now]
                served_ids = np.flatnonzero(served)
                opened[opened_ids] = True
                f_cur[opened_ids] = 0.0
                alpha[served_ids] = tau
                active[served_ids] = False
                machine.ledger.charge_basic(
                    "scatter", opened_ids.size + 2 * served_ids.size, depth=1
                )
                any_served = any_served or served_ids.size > 0
                ekeep = np.asarray(
                    machine.map(
                        lambda oe, sc: ~oe & ~sc,
                        open_edge,
                        machine.take_rows(served, e_col),
                    )
                )
                e_d, e_col, e_row = _pack_edges(machine, ekeep, e_d, e_col, e_row)
                row_keep2 = ~open_now
                relabel = np.cumsum(row_keep2) - 1
                adm = adm[row_keep2]
                e_row = machine.take_rows(relabel, e_row) if e_row.size else e_row

            # 4(d): drop facilities whose reduced star price exceeds the cut.
            if w is None:
                wsum = machine.scatter_add(e_d, e_row, adm.size)
                deg_now = machine.count_votes(e_row, adm.size).astype(float)
            else:
                e_w = np.asarray(machine.take_rows(w, e_col))
                wsum = machine.scatter_add(
                    np.asarray(machine.map(np.multiply, e_d, e_w)), e_row, adm.size
                )
                deg_now = np.asarray(machine.scatter_add(e_w, e_row, adm.size))
            fc = machine.take_rows(f_cur, adm)
            drop = np.asarray(
                machine.map(
                    lambda dg, ws, fcv: (dg > 0) & ((fcv + ws) > cut * dg * _REL_TOL),
                    deg_now,
                    wsum,
                    fc,
                )
            )
            if drop.any():
                ekeep = ~np.asarray(machine.take_rows(drop, e_row))
                e_d, e_col, e_row = _pack_edges(machine, ekeep, e_d, e_col, e_row)
                keep_rows = ~drop
                relabel = np.cumsum(keep_rows) - 1
                adm = adm[keep_rows]
                e_row = machine.take_rows(relabel, e_row) if e_row.size else e_row

        if any_served:
            l_cols, l_d, l_indptr = _compact_live(machine, l_cols, l_d, l_indptr, active)

    return _build_solution(
        instance, machine, start, opened, alpha, gamma, tau_trace, preprocessed, eps
    )
