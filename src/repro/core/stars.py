"""§4 step 1 — lowest-priced maximal stars via presorted prefix sums.

A *star* ``(i, C′)`` pairs facility ``i`` with clients ``C′``; its
price is ``(f_i + Σ_{j∈C′} d(j,i)) / |C′|``. By Fact 4.2 the cheapest
maximal star at ``i`` consists of the ``κ_i`` closest clients for some
``κ_i``, so after presorting each facility's distance row **once**, the
per-round computation is a prefix sum over the sorted order restricted
to still-active clients — basic matrix operations only, ``O(m)`` work
per round (this is what keeps Theorem 4.9 within ``O(m log² m)``).
"""

from __future__ import annotations

import numpy as np

from repro.pram.machine import PramMachine


def presort_distances(machine: PramMachine, D: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """One-time presort of the distance matrix.

    Returns ``(order, D_sorted)`` where ``order[i]`` is the ascending
    client permutation of facility ``i``'s row and ``D_sorted`` the
    reordered distances. Charged as the single sort the §4 analysis
    allows ("it also requires a single sort in the preprocessing").
    """
    order = machine.argsort_rows(D)
    D_sorted = machine.gather_rows(D, order)
    return order, D_sorted


def cheapest_star_prices_masked(
    machine: PramMachine,
    D_sorted: np.ndarray,
    order: np.ndarray,
    f_current: np.ndarray,
    active: np.ndarray,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Price of the cheapest (maximal) star at every facility.

    Parameters
    ----------
    D_sorted, order:
        Output of :func:`presort_distances`.
    f_current:
        Current opening costs (zero for already-open facilities).
    active:
        Boolean client mask; inactive clients are excluded from stars.
    weights:
        Optional client multiplicities: the star price generalizes to
        ``(f_i + Σ w_j d(j,i)) / Σ w_j`` over the ``κ`` closest active
        clients (the same exchange argument holds — for any weighted
        client budget the cheapest fill is ascending by distance).
        ``None`` runs the exact unweighted computation.

    Returns
    -------
    numpy.ndarray
        ``prices[i] = min_k (f_i + Σ of k closest active distances)/k``,
        ``+inf`` for facilities with no active client.

    Notes
    -----
    With ``rank = prefix-count`` of active clients in sorted order and
    ``psum = prefix-sum`` of active distances, the candidate price at an
    active position is ``(f_i + psum)/rank``; minimizing over positions
    minimizes over ``k``. Three basic matrix operations per call.
    """
    active_sorted = machine.gather_rows(
        np.broadcast_to(np.asarray(active, dtype=bool), D_sorted.shape), order
    )
    if weights is None:
        contrib = machine.where(active_sorted, D_sorted, 0.0)
        psum = machine.scan(contrib, "add", axis=1)
        rank = machine.scan(active_sorted.astype(float), "add", axis=1)
        candidate = machine.map(
            lambda a, p, r, fc: np.where(a, (fc + p) / np.maximum(r, 1.0), np.inf),
            active_sorted,
            psum,
            rank,
            np.asarray(f_current, dtype=float)[:, None],
        )
        return machine.reduce(candidate, "min", axis=1)
    w_sorted = machine.gather_rows(
        np.broadcast_to(np.asarray(weights, dtype=float), D_sorted.shape), order
    )
    contrib = machine.where(active_sorted, machine.map(np.multiply, D_sorted, w_sorted), 0.0)
    psum = machine.scan(contrib, "add", axis=1)
    rank = machine.scan(machine.where(active_sorted, w_sorted, 0.0), "add", axis=1)
    candidate = machine.map(
        # Fractional weights can sit below 1, so the zero-guard must not
        # clamp genuine ranks; inactive positions read +inf regardless.
        lambda a, p, r, fc: np.where(a, (fc + p) / np.where(r > 0, r, 1.0), np.inf),
        active_sorted,
        psum,
        rank,
        np.asarray(f_current, dtype=float)[:, None],
    )
    return machine.reduce(candidate, "min", axis=1)


def compact_sorted_columns(
    machine: PramMachine,
    sorted_ids: np.ndarray,
    sorted_d: np.ndarray,
    active: np.ndarray,
    sorted_w: np.ndarray | None = None,
) -> tuple:
    """Drop inactive clients from the presorted per-facility structure.

    ``sorted_ids``/``sorted_d`` hold each facility's remaining clients
    in ascending-distance order (initially the output of
    :func:`presort_distances`); ``active`` is the global client mask.
    Every row contains each client at most once, so removing a client
    set drops the same count per row and the pack stays rectangular.
    Cost: one map + one row-pack over the *current* frontier — this is
    what keeps later rounds from paying for served clients.

    With ``sorted_w`` (the per-row client weights in the same sorted
    order, weighted instances only) a third packed array is returned.
    """
    keep = machine.map(lambda ids: np.asarray(active, dtype=bool)[ids], sorted_ids)
    ids = machine.pack_rows(sorted_ids, keep)
    d = machine.pack_rows(sorted_d, keep)
    if sorted_w is None:
        return ids, d
    return ids, d, machine.pack_rows(sorted_w, keep)


def cheapest_star_prices_compact(
    machine: PramMachine,
    live_d: np.ndarray,
    f_current: np.ndarray,
    live_w: np.ndarray | None = None,
) -> np.ndarray:
    """Cheapest-star prices when the sorted structure is pre-compacted.

    ``live_d`` is the frontier-compacted ``n_f × |C_active|`` sorted
    distance matrix from :func:`compact_sorted_columns` — every column
    is live, so the masked prefix-count of
    :func:`cheapest_star_prices_masked` collapses to the column index
    and the whole computation is one scan, one map, and one reduce over
    the remaining instance. Produces bit-identical prices: the masked
    variant's prefix sums skip exactly the zero contributions this
    layout never materializes.

    ``live_w`` (same layout, weighted instances only) switches the
    price to ``(f_i + Σ w·d) / Σ w`` over each prefix.
    """
    nf, live = live_d.shape
    if live == 0:
        return np.full(nf, np.inf)
    if live_w is None:
        psum = machine.scan(live_d, "add", axis=1)
        rank = np.arange(1.0, live + 1.0)
        candidate = machine.map(
            lambda p, r, fc: (fc + p) / r,
            psum,
            rank[None, :],
            np.asarray(f_current, dtype=float)[:, None],
        )
        return machine.reduce(candidate, "min", axis=1)
    psum = machine.scan(machine.map(np.multiply, live_d, live_w), "add", axis=1)
    rank = machine.scan(live_w, "add", axis=1)
    candidate = machine.map(
        lambda p, r, fc: (fc + p) / np.where(r > 0, r, 1.0),
        psum,
        rank,
        np.asarray(f_current, dtype=float)[:, None],
    )
    return machine.reduce(candidate, "min", axis=1)


def star_members(D: np.ndarray, facility: int, price: float, active: np.ndarray) -> np.ndarray:
    """Clients of the cheapest maximal star (Fact 4.2(1)): exactly the
    active clients with ``d(j, i) ≤ price``. Analysis/test helper."""
    return np.flatnonzero(np.asarray(active, dtype=bool) & (D[facility] <= price + 1e-12))
