"""§7 — Parallel local search for k-median and k-means (Theorem 7.1).

The natural local search ("swap one center if it helps") parallelized
along the paper's two key ideas:

1. **Good warm start.** Any optimal k-center solution is an
   ``n``-approximation for k-median, so the §6.1 parallel 2-approx
   k-center gives a ``2n``-approximate start — making
   ``O(log_{1+ε/(1+ε)·1/k}) = O(k log n / β)`` improving rounds enough.
2. **All swaps in parallel.** With the client→center distances and each
   client's nearest/second-nearest center in hand, *every* candidate
   swap ``(i ∈ S, i′ ∉ S)`` is evaluated simultaneously:
   ``Δcost(i→i′) = Σ_j min(base_i(j), d(j, i′)) − cost``, where
   ``base_i(j)`` is ``j``'s service cost with ``i`` dropped — one
   ``O(k·n·n)``-work batch of basic matrix operations per round.

A swap is applied only if it improves the objective by a factor
``(1 − β/k)``, ``β = ε/(1+ε)`` — the polynomial-round variant whose
local optima are ``(5+ε)``-approximate for k-median and ``(81+ε)`` for
k-means (squared distances; Gupta–Tangwongsan analysis).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.kcenter import parallel_kcenter
from repro.core.result import ClusteringSolution
from repro.errors import ConvergenceError, InvalidParameterError
from repro.metrics.instance import ClusteringInstance
from repro.metrics.sparse import SparseClusteringInstance
from repro.pram.machine import PramMachine, ensure_machine
from repro.util.validation import check_epsilon

_OBJECTIVE_POWER = {"kmedian": 1.0, "kmeans": 2.0}


def _initial_centers(
    instance: ClusteringInstance, machine: PramMachine, initial
) -> np.ndarray:
    """Warm start: caller-provided centers or the parallel k-center
    2-approximation.

    When fewer than ``k`` centers come back, the remainder is padded
    Gonzalez-style — repeatedly promote the node farthest from the
    current set. That rule is label-free (relabeling the nodes relabels
    the pad, the equivariance the metamorphic suite asserts), improves
    the warm start for free, and computes identical distances on the
    dense and sparse instance shapes.
    """
    if initial is not None:
        centers = np.unique(np.asarray(initial, dtype=int))
        if centers.size == 0 or centers.min() < 0 or centers.max() >= instance.n:
            raise InvalidParameterError(f"invalid initial centers {initial!r}")
        centers = centers[: instance.k]
    else:
        centers = parallel_kcenter(instance, machine=machine).centers
    if centers.size < instance.k:
        # One full service-distance pass, then an O(n)-per-center
        # running-minimum update against only the promoted node's
        # distance column — never a from-scratch recomputation.
        d = instance._center_distances(centers)
        machine.ledger.charge_basic(
            "reduce[min]", max(getattr(instance, "m", d.size * centers.size), 1)
        )
        while centers.size < instance.k:
            far = int(machine.argmax(d))
            if d[far] <= 0.0:  # only duplicates of centers remain: any node works
                far = int(np.setdiff1d(np.arange(instance.n), centers)[0])
            centers = np.concatenate([centers, [far]])
            d = np.asarray(machine.map(np.minimum, d, _center_column(instance, far)))
    return np.sort(centers)


def _center_column(instance: ClusteringInstance, center: int) -> np.ndarray:
    """Distance of every node to one candidate center: a dense matrix
    column, or the center's stored CSR segment spread over ``+inf``
    (absent pairs cannot serve — the running minimum is already
    fallback-capped)."""
    if isinstance(instance, SparseClusteringInstance):
        lo, hi = instance.indptr[center], instance.indptr[center + 1]
        col = np.full(instance.n, np.inf)
        col[instance.indices[lo:hi]] = instance.data[lo:hi]
        return col
    return instance.D[:, center]


def parallel_local_search(
    instance: ClusteringInstance,
    objective: str = "kmedian",
    *,
    epsilon: float = 0.5,
    machine: PramMachine | None = None,
    seed=None,
    backend=None,
    initial=None,
    max_rounds: int | None = None,
) -> ClusteringSolution:
    """Run the §7 parallel local search to a ``(1−β/k)``-local optimum.

    Parameters
    ----------
    objective:
        ``"kmedian"`` (distances) or ``"kmeans"`` (squared distances).
    epsilon:
        Improvement slack ``0 < ε < 1`` (β = ε/(1+ε)); smaller ε means
        more rounds and a guarantee closer to 5 (resp. 81).
    backend:
        Execution backend name or instance for a freshly constructed
        machine; mutually exclusive with ``machine``. Seeded results
        agree across backends on every tested workload (pool
        backends may reassociate full float sum-reductions in the
        last ulp).
    initial:
        Optional warm-start centers (defaults to parallel k-center).
    max_rounds:
        Safety bound; defaults to the Arya et al. round bound for a
        ``2n``-approximate start, with headroom.

    Returns
    -------
    ClusteringSolution
        ``extra`` records the swap trace and the warm-start cost.

    Notes
    -----
    ``instance`` may also be a
    :class:`~repro.metrics.sparse.SparseClusteringInstance`; each round
    then evaluates every swap by segmented scatter-combines over the
    stored candidate edges — ``O(nnz)`` work per round instead of
    ``O(k·n²)`` (:mod:`repro.core.local_search_sparse`) — with
    identical seeded solutions to the dense path on dense-representable
    instances.

    Weighted instances (node multiplicities, the shard-and-conquer
    coreset representation) are optimized under the weighted objective
    ``Σ_j w_j d(j, S)^p`` on both paths; unit-weight instances run the
    exact unweighted code, byte-identical to instances built without
    weights.
    """
    if objective not in _OBJECTIVE_POWER:
        raise InvalidParameterError(
            f"objective must be one of {sorted(_OBJECTIVE_POWER)}, got {objective!r}"
        )
    eps = check_epsilon(epsilon, upper=1.0 - 1e-9)
    if isinstance(instance, SparseClusteringInstance):
        from repro.core.local_search_sparse import _parallel_local_search_sparse

        machine = ensure_machine(machine, backend=backend, seed=seed, size=instance.m)
        return _parallel_local_search_sparse(
            instance, objective, eps, machine, initial, max_rounds
        )
    machine = ensure_machine(machine, backend=backend, seed=seed, size=instance.D.size)
    n, k = instance.n, instance.k
    beta = eps / (1.0 + eps)

    start = machine.snapshot()
    centers = _initial_centers(instance, machine, initial)
    power = _OBJECTIVE_POWER[objective]
    # Service costs; for k-means these are squared distances (one map).
    Dp = machine.map(lambda d: d**power, instance.D) if power != 1.0 else instance.D
    # Node multiplicities scale each node's service cost (Σ w_j d^p);
    # None keeps the exact unweighted code path (byte-identical runs).
    w = None if instance.has_unit_weights else instance.weights

    if max_rounds is not None:
        cap = max_rounds
    else:
        # O(log_{1/(1-β/k)}(start/opt)) with start ≤ (2n)^power · opt.
        cap = math.ceil(power * math.log(2 * max(n, 2)) * (k / beta)) + 16

    def service_state(c: np.ndarray):
        Dc = machine.take_columns(Dp, c)
        if w is not None:
            # Row scale by a positive weight: argmins and the d1/d2
            # order within each node's row are unchanged, the sums
            # become the weighted objective.
            Dc = machine.map(lambda d, ww: d * ww, Dc, w[:, None])
        near_pos = machine.argmin(Dc, axis=1)
        d1 = Dc[np.arange(n), near_pos]
        masked = Dc.copy()
        masked[np.arange(n), near_pos] = np.inf
        machine.ledger.charge_basic("map", Dc.size, depth=1)  # masking pass
        d2 = machine.reduce(masked, "min", axis=1) if c.size > 1 else np.full(n, np.inf)
        return d1, d2, near_pos

    d1, d2, near_pos = service_state(centers)
    cost = float(machine.reduce(d1, "add"))
    initial_cost = cost
    swaps: list[tuple[int, int, float]] = []

    rounds = 0
    while True:
        rounds += 1
        machine.bump_round("local_search")
        if rounds > cap:
            raise ConvergenceError(
                f"local search exceeded {cap} rounds (n={n}, k={k}, eps={eps})"
            )
        out_mask = np.ones(n, dtype=bool)
        out_mask[centers] = False
        candidates = np.flatnonzero(out_mask)
        if candidates.size == 0:
            break  # k = n: every node is a center

        # base[a, j]: client j's cost with center slot a removed.
        base = machine.map(
            lambda np_, d2_, d1_, row: np.where(np_ == row, d2_, d1_),
            np.broadcast_to(near_pos[None, :], (k, n)),
            np.broadcast_to(d2[None, :], (k, n)),
            np.broadcast_to(d1[None, :], (k, n)),
            np.broadcast_to(np.arange(k)[:, None], (k, n)),
        )
        # new_cost[a, c] = Σ_j w_j · min(base[a, j], Dp[candidate_c, j])
        cand_rows = machine.take_columns(Dp.T, candidates).T  # (n_cand, n)
        if w is not None:
            # base is already weighted (built from weighted d1/d2);
            # weighting the candidate rows the same way keeps
            # min(w·x, w·y) = w·min(x, y) exact.
            cand_rows = machine.map(lambda d, ww: d * ww, cand_rows, w[None, :])
        trial = machine.map(
            np.minimum,
            np.broadcast_to(base[:, None, :], (k, candidates.size, n)),
            np.broadcast_to(cand_rows[None, :, :], (k, candidates.size, n)),
        )
        new_cost = machine.reduce(trial, "add", axis=2)
        flat_best = int(machine.argmin(new_cost))
        a, c = np.unravel_index(flat_best, new_cost.shape)
        best = float(new_cost[a, c])
        if best < (1.0 - beta / k) * cost:
            swaps.append((int(centers[a]), int(candidates[c]), best))
            centers = np.sort(np.concatenate([np.delete(centers, a), [candidates[c]]]))
            d1, d2, near_pos = service_state(centers)
            cost = best
        else:
            break

    cost_fn = instance.kmedian_cost if objective == "kmedian" else instance.kmeans_cost
    return ClusteringSolution(
        centers=centers,
        cost=cost_fn(centers),
        objective=objective,
        rounds=dict(machine.ledger.rounds),
        model_costs=machine.ledger.since(start),
        extra={
            "initial_cost": initial_cost,
            "swaps": swaps,
            "epsilon": eps,
            "beta": beta,
        },
    )


def parallel_kmedian(instance: ClusteringInstance, **kwargs) -> ClusteringSolution:
    """Convenience wrapper: §7 local search with the k-median objective."""
    return parallel_local_search(instance, "kmedian", **kwargs)


def parallel_kmeans(instance: ClusteringInstance, **kwargs) -> ClusteringSolution:
    """Convenience wrapper: §7 local search with the k-means objective."""
    return parallel_local_search(instance, "kmeans", **kwargs)
