"""§7 local search over sparse candidate structures.

The same Theorem 7.1 swap loop as :mod:`repro.core.local_search`,
executed on a :class:`~repro.metrics.sparse.SparseClusteringInstance`.
The dense path evaluates every swap ``(a ∈ S, c ∉ S)`` with an
``O(k·n²)``-work batch; here the batch decomposes over the stored
candidate edges so per-round work is ``O(nnz)`` (plus the size of the
swap table), which is what takes local search to 100k-node kNN
instances.

**The decomposition.** With ``d1/d2`` each node's best/second-best open
service cost (fallback-capped) and ``base_a(j) = d2(j)`` when center
slot ``a`` serves ``j`` else ``d1(j)``, the swap objective splits as::

    cost(S − a + c) = cost(S) + reassign(a) + G1(c) + C(a, c)

    reassign(a) = Σ_{j: slot(j)=a} (d2(j) − d1(j))          # scatter_add over nodes
    G1(c)       = Σ_{(j,c) stored} min(0, dᵖ(j,c) − d1(j))  # scatter_add over edges
    C(a, c)     = Σ_{(j,c) stored, slot(j)=a}
                    min(0, dᵖ(j,c) − d2(j)) − min(0, dᵖ(j,c) − d1(j))

All three are segmented scatter-combines over the CSR edge list; a node
pair never stored simply cannot serve (its contribution is the fallback
already inside ``d1/d2``). ``C ≤ 0`` entry-wise (``d2 ≥ d1``), so the
best swap is ``min`` over the union of (i) pairs with nonzero ``C``
(grouped per-key sums) and (ii) the unconstrained minimizer
``argmin reassign + argmin G1`` — small swap tables materialize the
full ``k × |candidates|`` matrix instead (same argmin order as the
dense path), large ones stay on the grouped edge list.

**Parity.** On dense-representable instances the service state
(``d1``, ``d2``, serving slots) is computed by segmented kernels that
see exactly the dense columns, and the warm start consumes the
identical RNG stream through the sparse k-center — seeded solutions
(centers, swap sequence, costs) match the dense path on every tested
workload. The decomposed swap sums may reassociate relative to the
dense batch sum by an ulp — the same caveat already accepted for pool-
backend reductions — which is why the equivalence suite asserts the
returned solutions, not intermediate floats.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.local_search import _OBJECTIVE_POWER, _initial_centers
from repro.core.result import ClusteringSolution
from repro.errors import ConvergenceError
from repro.metrics.sparse import SparseClusteringInstance
from repro.pram.machine import PramMachine

# Above this many swap-table entries the per-round evaluation stays on
# the grouped edge list instead of materializing a k × |candidates|
# delta matrix (tests monkeypatch this to force the grouped path).
_SWAP_MATRIX_CAP = 1 << 23


def _service_state(
    machine: PramMachine,
    indptr: np.ndarray,
    cols: np.ndarray,
    dp: np.ndarray,
    fb: np.ndarray,
    centers: np.ndarray,
    n: int,
    dp_max: float,
):
    """Per-node best/second-best open service cost and serving slot.

    Returns ``(d1, d2, near_slot)``: fallback-capped best and
    removal-of-server costs, and the index into the sorted ``centers``
    array of each node's serving center (``-1`` when the fallback
    serves it). All segmented min-reductions over the CSR structure —
    ``O(nnz)``.

    Infinite service costs — a node with no open stored candidate and
    no finite fallback (``d1 = inf``), or no *second* open candidate
    (``d2 = inf``, e.g. ``k = 1``) — are clamped to a finite sentinel
    strictly above any achievable objective, so the swap decomposition
    never forms ``inf − inf`` or ``inf`` + ``-inf`` NaNs. The ordering
    of swap values is preserved: a swap that leaves such a node
    unserved carries a sentinel-sized delta (never chosen while any
    covering swap exists, and not an improvement otherwise), while a
    swap that covers the node contributes ``min(sentinel, d) = d``,
    identical to the unclamped math. The *returned* cost is always
    re-evaluated by the instance objective, so a genuinely unservable
    final state still reports ``inf``.
    """
    open_mask = np.zeros(n, dtype=bool)
    open_mask[centers] = True
    open_e = np.asarray(machine.take_rows(open_mask, cols))
    val = np.asarray(machine.where(open_e, dp, np.inf))
    d1s = np.asarray(machine.segmented_reduce(val, indptr, "min"))
    near_entry = machine.segmented_argmin(val, indptr)
    # Mask each node's serving entry and reduce again (rows are never
    # empty — the diagonal is always stored).
    val2 = val.copy()
    val2[near_entry] = np.inf
    machine.ledger.charge_basic("map", max(val.size, 1), depth=1)
    d2s = np.asarray(machine.segmented_reduce(val2, indptr, "min"))
    served = np.isfinite(d1s) & (d1s <= fb)
    d1 = np.asarray(machine.map(np.minimum, d1s, fb))
    d2 = np.asarray(machine.map(np.minimum, d2s, fb))
    near_slot = np.where(
        served, np.searchsorted(centers, cols[near_entry]), -1
    ).astype(np.intp)
    # Fallback-served nodes keep their cost whichever center closes.
    d2 = np.where(served, d2, d1)
    # Finite sentinel above any achievable objective (see docstring).
    finite_d1 = d1[np.isfinite(d1)]
    big = 1.0 + float(finite_d1.sum()) + dp_max
    d1 = np.minimum(d1, big)
    d2 = np.minimum(d2, big)
    machine.ledger.charge_basic("map", n, depth=1)
    return d1, d2, near_slot


def _grouped_best_swap(
    machine: PramMachine,
    reassign: np.ndarray,
    G1: np.ndarray,
    near_e: np.ndarray,
    cl_e: np.ndarray,
    c_e: np.ndarray,
    mask: np.ndarray,
    ncand: int,
):
    """Best swap without the k × |candidates| table.

    Every pair with a nonzero correction is summed per ``(slot,
    candidate)`` key (sort + segmented sum over at most ``nnz`` edges);
    since corrections are ≤ 0, the global minimum is the better of the
    grouped minimum and ``argmin reassign + argmin G1``.
    """
    keys = machine.pack(near_e * ncand + cl_e, mask)
    vals = machine.pack(c_e, mask)
    t1, t1_pair = np.inf, None
    if keys.size:
        order = np.argsort(keys, kind="stable")
        machine.ledger.charge_sort("swap_group_sort", keys.size, keys.size)
        ks, vs = keys[order], vals[order]
        bounds = np.flatnonzero(np.concatenate(([True], ks[1:] != ks[:-1])))
        sums = np.add.reduceat(vs, bounds)
        machine.ledger.charge_basic("segmented_reduce[add]", vs.size + bounds.size)
        ua, uc = np.divmod(ks[bounds], ncand)
        support = np.asarray(
            machine.map(lambda r, g, s: r + g + s, reassign[ua], G1[uc], sums)
        )
        i = int(machine.argmin(support))
        t1, t1_pair = float(support[i]), (int(ua[i]), int(uc[i]))
    a2 = int(machine.argmin(reassign))
    c2 = int(machine.argmin(G1))
    t2 = float(reassign[a2] + G1[c2])
    if t1_pair is not None and t1 <= t2:
        return t1_pair[0], t1_pair[1], t1
    return a2, c2, t2


def _parallel_local_search_sparse(
    instance: SparseClusteringInstance,
    objective: str,
    eps: float,
    machine: PramMachine,
    initial,
    max_rounds: int | None,
) -> ClusteringSolution:
    """Sparse execution of the §7 swap loop (see module docstring)."""
    n, k = instance.n, instance.k
    beta = eps / (1.0 + eps)
    power = _OBJECTIVE_POWER[objective]

    start = machine.snapshot()
    centers = _initial_centers(instance, machine, initial)
    indptr, cols = instance.indptr, instance.indices
    rows_e = instance.rows_flat()
    dp = (
        np.asarray(machine.map(lambda d: d**power, instance.data))
        if power != 1.0
        else instance.data
    )
    fb = (
        np.asarray(machine.map(lambda f: f**power, instance.fallback))
        if power != 1.0
        else instance.fallback
    )
    if not instance.has_unit_weights:
        # Node multiplicities scale every service cost of node j (its
        # CSR row and its fallback) by w_j, so each segmented sum below
        # is the weighted objective; per-row argmins are unchanged
        # (positive uniform scale within a row). Unit weights skip this
        # entirely — the unweighted code path stays byte-identical.
        w = instance.weights
        dp = np.asarray(machine.map(lambda d, ww: d * ww, dp, machine.take_rows(w, rows_e)))
        fb = np.asarray(machine.map(lambda f, ww: f * ww, fb, w))

    if max_rounds is not None:
        cap = max_rounds
    else:
        cap = math.ceil(power * math.log(2 * max(n, 2)) * (k / beta)) + 16

    dp_max = float(dp.max()) if dp.size else 0.0
    d1, d2, near_slot = _service_state(
        machine, indptr, cols, dp, fb, centers, n, dp_max
    )
    cost = float(machine.reduce(d1, "add"))
    initial_cost = cost
    swaps: list[tuple[int, int, float]] = []

    rounds = 0
    while True:
        rounds += 1
        machine.bump_round("local_search")
        if rounds > cap:
            raise ConvergenceError(
                f"local search exceeded {cap} rounds (n={n}, k={k}, eps={eps})"
            )
        out_mask = np.ones(n, dtype=bool)
        out_mask[centers] = False
        candidates = np.flatnonzero(out_mask)
        if candidates.size == 0:
            break  # k = n: every node is a center
        ncand = candidates.size
        cand_local = np.full(n, -1, dtype=np.intp)
        cand_local[candidates] = np.arange(ncand)
        machine.ledger.charge_basic("map", n, depth=1)

        served = near_slot >= 0
        reassign = np.asarray(
            machine.scatter_add(
                np.where(served, d2 - d1, 0.0), np.where(served, near_slot, 0), k
            )
        )
        machine.ledger.charge_basic("map", n, depth=1)

        cl_e = np.asarray(machine.take_rows(cand_local, cols))
        valid_e = cl_e >= 0
        d1_e = np.asarray(machine.take_rows(d1, rows_e))
        g_e = np.asarray(machine.map(lambda d, b: np.minimum(0.0, d - b), dp, d1_e))
        G1 = np.asarray(
            machine.scatter_add(
                np.where(valid_e, g_e, 0.0), np.where(valid_e, cl_e, 0), ncand
            )
        )
        near_e = np.asarray(machine.take_rows(near_slot, rows_e))
        d2_e = np.asarray(machine.take_rows(d2, rows_e))
        c_e = np.asarray(
            machine.map(
                lambda d, b2, g: np.minimum(0.0, d - b2) - g, dp, d2_e, g_e
            )
        )
        corr_mask = valid_e & (near_e >= 0) & (c_e != 0.0)
        machine.ledger.charge_basic("map", max(dp.size, 1), depth=1)

        if k * ncand <= _SWAP_MATRIX_CAP:
            keys = near_e * ncand + cl_e
            Cflat = np.asarray(
                machine.scatter_add(
                    np.where(corr_mask, c_e, 0.0),
                    np.where(corr_mask, keys, 0),
                    k * ncand,
                )
            )
            delta = np.asarray(
                machine.map(
                    lambda r, g, cc: r + g + cc,
                    np.broadcast_to(reassign[:, None], (k, ncand)),
                    np.broadcast_to(G1[None, :], (k, ncand)),
                    Cflat.reshape(k, ncand),
                )
            )
            flat_best = int(machine.argmin(delta))
            a, c = divmod(flat_best, ncand)
            best = cost + float(delta[a, c])
        else:
            a, c, dbest = _grouped_best_swap(
                machine, reassign, G1, near_e, cl_e, c_e, corr_mask, ncand
            )
            best = cost + dbest

        if best < (1.0 - beta / k) * cost:
            swaps.append((int(centers[a]), int(candidates[c]), best))
            centers = np.sort(np.concatenate([np.delete(centers, a), [candidates[c]]]))
            d1, d2, near_slot = _service_state(
                machine, indptr, cols, dp, fb, centers, n, dp_max
            )
            cost = best
        else:
            break

    cost_fn = instance.kmedian_cost if objective == "kmedian" else instance.kmeans_cost
    return ClusteringSolution(
        centers=centers,
        cost=cost_fn(centers),
        objective=objective,
        rounds=dict(machine.ledger.rounds),
        model_costs=machine.ledger.since(start),
        extra={
            "initial_cost": initial_cost,
            "swaps": swaps,
            "epsilon": eps,
            "beta": beta,
        },
    )
