"""Fault-tolerant execution: supervision, retries, and fault injection.

The ROADMAP's "clustering-as-a-service" north star needs the execution
layer to survive partial failure: a million-point
:func:`~repro.shard.shard_and_solve` run fans per-shard work across a
process pool, and without this package one hung or crashed worker aborts
the whole solve. Two halves:

* :mod:`repro.faults.supervisor` — :class:`Supervisor` wraps any
  backend's task pool with per-task timeouts, crash detection
  (sentinel start/finish flags in shared memory plus isolation reruns
  attribute ``BrokenProcessPool`` to the task that actually crashed,
  not to collateral tasks the breakage tore down), retries under a
  :class:`RetryPolicy` (exponential backoff, deterministic jitter),
  pool respawn, and structured :class:`TaskFailure` records.
* :mod:`repro.faults.plan` — :class:`FaultPlan` injects deterministic
  crashes / stalls / transient raises / corrupted results into
  supervised execution, so every recovery path is exercised in CI
  without flaky sleeps. ``REPRO_FAULT_PLAN`` activates a plan from the
  environment.

The error taxonomy lives in :mod:`repro.errors`
(:class:`~repro.errors.WorkerCrashError`,
:class:`~repro.errors.TaskTimeoutError`,
:class:`~repro.errors.ShardFailedError`, all chained via
``__cause__``). Degraded-mode solving — proceeding on surviving shards
with a widened, coverage-aware certificate — is wired into
:func:`repro.shard.shard_and_solve` via ``on_shard_failure="drop"``.
"""

from repro.faults.plan import (
    FaultPlan,
    FaultSpec,
    InjectedCrashError,
    InjectedFaultError,
    apply_fault_after,
    apply_fault_before,
    corrupt_result,
)
from repro.faults.supervisor import (
    NO_RETRY,
    RetryPolicy,
    Supervisor,
    TaskAttempt,
    TaskFailure,
    supervised_submit_batch,
)

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "InjectedCrashError",
    "InjectedFaultError",
    "apply_fault_after",
    "apply_fault_before",
    "corrupt_result",
    "NO_RETRY",
    "RetryPolicy",
    "Supervisor",
    "TaskAttempt",
    "TaskFailure",
    "supervised_submit_batch",
]
