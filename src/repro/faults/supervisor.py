"""Supervised batch execution: retry, timeout, backoff, and crash
recovery over any :class:`~repro.pram.backends.Backend`.

:meth:`Backend.submit_batch` fans independent tasks over a worker pool
but inherits the pool's failure model: one hung worker stalls the batch
forever, one crashed process poisons every outstanding future, and a
raised exception aborts everything with a raw traceback. The
:class:`Supervisor` wraps the same pools with an explicit failure
contract governed by a :class:`RetryPolicy`:

* **per-task timeouts** — the supervisor stops waiting on a task after
  ``policy.timeout`` seconds (measured from when it turns to that
  task), classifies it as :class:`~repro.errors.TaskTimeoutError`, and
  on process pools abandons + respawns the pool so the hung worker
  cannot wedge later rounds;
* **crash detection and attribution** — ``BrokenProcessPool`` poisons
  every outstanding future, so the supervisor plants a *sentinel flag
  array* in shared memory that each task stamps at start and finish.
  After a crash, tasks that never started are collateral and rerun for
  free; tasks observed mid-run are *suspects* (the crasher is
  indistinguishable in-band from an innocent task on a worker torn
  down with the pool) and are rerun one-at-a-time on the respawned
  pool — a lone task that breaks the pool again is attributed exactly
  (attempt consumed, :class:`~repro.errors.WorkerCrashError`) while
  innocents simply complete;
* **retries with exponential backoff + deterministic jitter** — failed
  tasks are resubmitted up to ``policy.max_attempts`` times; the delay
  between rounds grows by ``policy.backoff`` with a jitter derived from
  the task index (never from wall-clock entropy, so reruns are
  reproducible);
* **structured failure records** — a task that exhausts its budget
  yields a :class:`TaskFailure` (index, attempts, classified error with
  ``__cause__`` chaining, total duration) instead of a traceback; the
  caller decides whether to raise or degrade.

Fault injection for tests rides on the same machinery: a
:class:`~repro.faults.plan.FaultPlan` is consulted per ``(task,
attempt)`` and applied inside the worker, so every recovery path above
is exercised deterministically in CI.

Supervised functions must be **deterministic per item**: recovery rests
on reruns being byte-identical to the run that failed (the shard
pipeline guarantees this by deriving each task's seed from a
``SeedSequence`` spawn carried in the item itself).
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import BrokenExecutor, CancelledError
from concurrent.futures import TimeoutError as _FuturesTimeout
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.errors import (
    ConvergenceError,
    ExecutionError,
    InvalidParameterError,
    TaskTimeoutError,
    WorkerCrashError,
)
from repro.faults.plan import (
    FaultPlan,
    InjectedCrashError,
    apply_fault_after,
    apply_fault_before,
)
from repro.obs.log import current_log
from repro.obs.tracer import current_trace_id, current_tracer
from repro.pram.backends import (
    _TracedResult,
    _unpack_value,
    fn_picklable,
    pack_batch_items,
)
from repro.util.validation import (
    check_nonnegative,
    check_positive_float,
    check_positive_int,
)

#: Sentinel flag values stamped by workers into the shared flag array.
_IDLE, _STARTED, _FINISHED = 0, 1, 2


@dataclass(frozen=True)
class RetryPolicy:
    """How the supervisor treats a failing task.

    Parameters
    ----------
    max_attempts:
        Total runs a task may consume through *attributed* failures
        (crash while running, timeout, raised exception, rejected
        result). Collateral reruns after someone else's crash are free.
    base_delay / backoff / jitter:
        The wait before retry round ``a`` is
        ``base_delay · backoff^(a-1) · (1 + jitter·u)`` with ``u ∈
        [0, 1)`` derived deterministically from the task index — spread
        without wall-clock entropy.
    timeout:
        Per-task wait bound in seconds (``None`` = wait forever). On
        pool-less (serial/closed) execution the task cannot be
        preempted; it is classified as timed out after the fact.
    retryable_exceptions:
        Which *task-raised* exception types consume a retry rather than
        failing immediately. Infrastructure failures
        (:class:`WorkerCrashError`, :class:`TaskTimeoutError`) are
        always retryable — the task itself did nothing wrong.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    backoff: float = 2.0
    jitter: float = 0.1
    timeout: float | None = None
    retryable_exceptions: tuple = (Exception,)

    def __post_init__(self):
        check_positive_int(self.max_attempts, name="max_attempts")
        check_nonnegative(self.base_delay, name="base_delay")
        check_nonnegative(self.jitter, name="jitter")
        if not float(self.backoff) >= 1.0:
            raise InvalidParameterError(
                f"backoff must be >= 1 (delays may not shrink), got {self.backoff!r}"
            )
        if self.timeout is not None:
            check_positive_float(self.timeout, name="timeout")
        excs = tuple(self.retryable_exceptions)
        for e in excs:
            if not (isinstance(e, type) and issubclass(e, Exception)):
                raise InvalidParameterError(
                    f"retryable_exceptions must be Exception subclasses, got {e!r}"
                )
        object.__setattr__(self, "retryable_exceptions", excs)

    def delay(self, attempt: int, index: int = 0) -> float:
        """Backoff before the ``attempt``-th retry of task ``index``."""
        if self.base_delay == 0.0:
            return 0.0
        d = self.base_delay * self.backoff ** (max(int(attempt), 1) - 1)
        if self.jitter:
            u = float(np.random.default_rng([abs(int(index)), max(int(attempt), 1)]).random())
            d *= 1.0 + self.jitter * u
        return d


#: Fail fast: a single attempt, no waiting — supervision reduced to
#: classification + structured failure records.
NO_RETRY = RetryPolicy(max_attempts=1, base_delay=0.0, jitter=0.0)


@dataclass
class TaskFailure:
    """One task's terminal failure: which task, how many attempts it
    consumed, the classified error (original exception chained as
    ``error.__cause__``), and the wall-clock spent across attempts."""

    index: int
    attempts: int
    error: ExecutionError
    duration: float

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return (
            f"task {self.index} failed after {self.attempts} attempt(s) "
            f"({self.duration:.3f}s): {self.error}"
        )


@dataclass(frozen=True)
class TaskAttempt:
    """One run of one task, successful or not.

    Where :class:`TaskFailure` exists only for tasks that exhausted
    their budget, the supervisor's :attr:`Supervisor.attempt_log` keeps
    a :class:`TaskAttempt` for *every* run of every task — including
    the retries behind a task that ultimately succeeded, which
    previously left no record at all.

    ``outcome`` is one of ``"ok"``, ``"fail"``, ``"timeout"``,
    ``"crash"``, ``"rejected"`` (validation refused the result),
    ``"suspect"`` (mid-run during a pool breakage, rerun in isolation),
    or ``"free"`` (collateral rerun, no attempt consumed).
    """

    index: int
    attempt: int
    outcome: str
    error: str | None
    duration: float


def _supervised_call(payload):
    """Run one supervised task inside a worker (module-level: must
    pickle to process pools). Stamps the sentinel flag array — shared
    memory attached by name — at start and finish, applies the injected
    fault (if any) around the real function. ``packed`` marks an item
    whose ndarrays crossed by shared-memory name (zero-copy process
    transport); it is materialized into read-only views here, under the
    same tracker suppression as the flags segment — the parent owns
    every segment's lifetime. ``trace`` asks for worker-local timing:
    the raw result (with any injected corruption already applied, so
    fault semantics are identical either way) rides back wrapped in a
    timing envelope the parent unwraps before validation. ``trace_id``
    is the request trace id the round was dispatched under (or None);
    it rides back inside the envelope so worker spans are attributed to
    the request even across the process boundary."""
    fn, item, spec, flags_name, slot, packed, trace, trace_id = payload
    shm = None
    flags = None
    item_shms: list = []
    if flags_name is not None or packed:
        # On this Python, *attaching* registers the segment with the
        # resource tracker, so a worker killed mid-task (the exact
        # event we supervise) would leave a dangling registration that
        # later unlinks the segment out from under the parent. The
        # parent owns the lifetime; suppress the worker-side
        # registration entirely. (Workers run tasks one at a time, so
        # the swap cannot race another attach in this process.)
        orig_register = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None
        try:
            if flags_name is not None:
                try:
                    shm = shared_memory.SharedMemory(name=flags_name)
                except (FileNotFoundError, OSError):
                    # The segment vanished (parent already tore the round
                    # down): run unstamped — worst case the task is reported
                    # as a suspect and re-proven in isolation.
                    shm = None
            if packed:
                item = _unpack_value(item, item_shms)
        finally:
            resource_tracker.register = orig_register
        if shm is not None:
            flags = np.ndarray((shm.size,), dtype=np.uint8, buffer=shm.buf)
            flags[slot] = _STARTED
    try:
        start_us = time.perf_counter_ns() // 1000 if trace else 0
        apply_fault_before(spec)
        result = apply_fault_after(spec, fn(item))
        if flags is not None:
            flags[slot] = _FINISHED
        if trace:
            result = _TracedResult(
                result,
                os.getpid(),
                threading.get_native_id(),
                start_us,
                time.perf_counter_ns() // 1000,
                trace_id,
            )
        return result
    finally:
        for item_shm in item_shms:
            item_shm.close()
        if shm is not None:
            shm.close()


@dataclass
class _Outcome:
    """One task's result for one round: ``kind`` ∈ ``ok`` (value), ``fail``
    (classified error, attempt consumed), ``free`` (collateral — rerun
    without consuming an attempt), ``suspect`` (was mid-run when the
    pool broke; rerun *in isolation* so a repeat crash attributes it
    exactly, without consuming an attempt yet)."""

    kind: str
    value: object = None
    error: ExecutionError | None = None
    duration: float = 0.0


class Supervisor:
    """Fault-tolerant ``submit_batch`` over an existing backend.

    The supervisor never owns the backend — it borrows whatever pool the
    backend currently holds, falling back to in-process execution when
    there is none (serial backend, closed backend, unpicklable ``fn`` on
    a process pool). Results are order-preserving;
    :meth:`submit_batch` returns ``(results, failures)`` where a failed
    task's slot holds ``None`` and its :class:`TaskFailure` explains
    why. Every run of every task — retries behind eventual successes
    included — is additionally recorded in :attr:`attempt_log` (reset
    per :meth:`submit_batch`), and, when a tracer is active, emitted as
    ``cat="fault"`` trace events plus ``supervisor.attempts_total`` /
    ``supervisor.tasks_retried`` counters.
    """

    def __init__(
        self,
        backend,
        policy: RetryPolicy | None = None,
        fault_plan: FaultPlan | None = None,
        tracer=None,
    ):
        self.backend = backend
        self.policy = policy if policy is not None else RetryPolicy()
        if not isinstance(self.policy, RetryPolicy):
            raise InvalidParameterError(
                f"policy must be a RetryPolicy, got {type(self.policy).__name__}"
            )
        if fault_plan is not None and not isinstance(fault_plan, FaultPlan):
            raise InvalidParameterError(
                f"fault_plan must be a FaultPlan, got {type(fault_plan).__name__}"
            )
        self.fault_plan = fault_plan
        self.tracer = tracer
        #: :class:`TaskAttempt` records from the most recent
        #: :meth:`submit_batch`, in processing order.
        self.attempt_log: list[TaskAttempt] = []

    # -- public API ---------------------------------------------------------

    def submit_batch(self, fn, items, *, validate=None):
        """Run ``fn`` over ``items`` under supervision.

        ``validate(index, result)`` — when given — is called in the
        parent on every successful result; raising rejects the result
        (the corrupt-result detection hook) and consumes an attempt like
        any task failure.

        Returns ``(results, failures)``: ``results[i]`` is the task's
        value or ``None`` if it terminally failed, ``failures`` the
        index-sorted :class:`TaskFailure` records (empty on full
        success).
        """
        items = list(items)
        n = len(items)
        tracer = self.tracer if self.tracer is not None else current_tracer()
        self.attempt_log = []
        retried: set = set()
        results: list = [None] * n
        attempts = [1] * n  # attempt number of the task's NEXT run
        spent = [0.0] * n
        failures: list[TaskFailure] = []
        pending = list(range(n))
        rounds = 0
        isolate = False
        # Each failing round attributes at least one attempt, so rounds
        # are bounded by n·max_attempts (+1 clean final round); the
        # guard turns a logic bug into a loud error, not a hang.
        guard = self.policy.max_attempts * max(n, 1) + 8
        while pending:
            rounds += 1
            if rounds > guard:  # pragma: no cover - safety valve
                raise ConvergenceError(
                    f"supervised batch did not settle in {guard} rounds"
                )
            if isolate and len(pending) > 1:
                # Post-breakage round: run each suspect alone on the
                # pool. A lone task that breaks the pool *is* the
                # crasher — exact attribution; innocents that were
                # merely mid-run when someone else died just succeed.
                outcomes = []
                for idx in pending:
                    outcomes.extend(self._run_round(fn, items, [idx], attempts, tracer))
            else:
                outcomes = self._run_round(fn, items, pending, attempts, tracer)
            isolate = False
            retry: list[int] = []
            burned: list[int] = []
            for idx, outcome in zip(pending, outcomes):
                rejected = False
                if outcome.kind == "ok":
                    spent[idx] += outcome.duration
                    error = self._validated(validate, idx, outcome.value)
                    if error is None:
                        results[idx] = outcome.value
                        self._record(tracer, idx, attempts[idx], "ok", None, outcome.duration)
                        continue
                    outcome = _Outcome("fail", error=error)
                    rejected = True
                if outcome.kind == "suspect":
                    self._record(tracer, idx, attempts[idx], "suspect", None, outcome.duration)
                    isolate = True
                    retry.append(idx)
                    continue
                if outcome.kind == "free":
                    self._record(tracer, idx, attempts[idx], "free", None, outcome.duration)
                    retry.append(idx)
                    continue
                spent[idx] += outcome.duration
                error = outcome.error
                self._record(
                    tracer,
                    idx,
                    attempts[idx],
                    "rejected" if rejected else self._outcome_name(error),
                    error,
                    outcome.duration,
                )
                if attempts[idx] >= self.policy.max_attempts or not self._retryable(error):
                    failures.append(
                        TaskFailure(idx, attempts[idx], error, spent[idx])
                    )
                else:
                    attempts[idx] += 1
                    if idx not in retried:
                        retried.add(idx)
                        if tracer.enabled:
                            tracer.metrics.counter("supervisor.tasks_retried").inc()
                    burned.append(idx)
                    retry.append(idx)
            if burned:
                delay = max(self.policy.delay(attempts[i] - 1, i) for i in burned)
                if tracer.enabled:
                    tracer.instant(
                        "retry_wait",
                        "fault",
                        args={"tasks": list(burned), "delay_s": delay},
                    )
                time.sleep(delay)
            pending = retry
        failures.sort(key=lambda f: f.index)
        return results, failures

    # -- attempt accounting -------------------------------------------------

    @staticmethod
    def _outcome_name(error) -> str:
        if isinstance(error, TaskTimeoutError):
            return "timeout"
        if isinstance(error, WorkerCrashError):
            return "crash"
        return "fail"

    def _record(self, tracer, index, attempt, outcome, error, duration) -> None:
        """Append one :class:`TaskAttempt`; mirror it into the tracer.

        The log itself is unconditional (it is how successful-task
        retry history became observable at all); trace events and
        counters only fire when tracing is on.
        """
        self.attempt_log.append(
            TaskAttempt(
                index,
                attempt,
                outcome,
                str(error) if error is not None else None,
                duration,
            )
        )
        log = current_log()
        if log.enabled and outcome != "ok":
            log.event(
                f"supervisor.task_{outcome}",
                task=index,
                attempt=attempt,
                error=str(error)[:200] if error is not None else None,
                duration_s=duration,
            )
        if not tracer.enabled:
            return
        if outcome not in ("free", "suspect"):
            tracer.metrics.counter("supervisor.attempts_total").inc()
        if outcome != "ok":
            tracer.instant(
                f"task_{outcome}",
                "fault",
                args={
                    "task": index,
                    "attempt": attempt,
                    "error": str(error)[:200] if error is not None else None,
                },
            )

    # -- round execution ----------------------------------------------------

    def _spec(self, index: int, attempt: int):
        return self.fault_plan.lookup(index, attempt) if self.fault_plan else None

    def _retryable(self, error: ExecutionError) -> bool:
        if isinstance(error, (WorkerCrashError, TaskTimeoutError)):
            return True  # infrastructure failed, not the task
        cause = error.__cause__ if error.__cause__ is not None else error
        return isinstance(cause, self.policy.retryable_exceptions)

    @staticmethod
    def _validated(validate, index, value) -> ExecutionError | None:
        if validate is None:
            return None
        try:
            validate(index, value)
            return None
        except Exception as exc:
            error = ExecutionError(
                f"task {index} returned a rejected result: {exc}"
            )
            error.__cause__ = exc
            return error

    def _run_round(self, fn, items, pending, attempts, tracer) -> list[_Outcome]:
        backend = self.backend
        pool = getattr(backend, "_pool", None)
        if pool is None or getattr(backend, "closed", False):
            return self._run_inline(fn, items, pending, attempts, tracer)
        if getattr(backend, "_batch_requires_pickle", False):
            if not fn_picklable(fn):
                return self._run_inline(fn, items, pending, attempts, tracer)
            return self._run_pool(fn, items, pending, attempts, tracer, pool, sentinel=True)
        return self._run_pool(fn, items, pending, attempts, tracer, pool, sentinel=False)

    @staticmethod
    def _unwrap_traced(tracer, value, idx, attempt, submit_ts):
        """Strip a worker timing envelope, emitting its spans.

        Returns the raw task value. Queue-wait is measured from the
        round's submit timestamp (``None`` for inline execution, which
        has no queue).
        """
        if not isinstance(value, _TracedResult):
            return value
        lane = tracer.worker_lane(value.pid, value.tid)
        args = {"task": idx, "attempt": attempt, "supervised": True}
        if value.trace_id is not None:
            # the id the round was dispatched under — authoritative even
            # if the unwrapping thread's ambient context moved on
            args["trace_id"] = value.trace_id
        if submit_ts is not None:
            tracer.complete(
                "queue_wait",
                "backend",
                submit_ts,
                max(value.start_us - submit_ts, 0),
                tid=lane,
                args=args,
            )
        tracer.complete(
            "exec",
            "backend",
            value.start_us,
            max(value.end_us - value.start_us, 0),
            tid=lane,
            args=args,
        )
        return value.value

    def _run_inline(self, fn, items, pending, attempts, tracer) -> list[_Outcome]:
        """Pool-less execution in the calling thread. Nothing can be
        preempted here, so timeouts are classified after the fact and a
        ``crash`` fault surfaces as :class:`InjectedCrashError`."""
        trace = tracer.enabled
        outcomes = []
        for idx in pending:
            spec = self._spec(idx, attempts[idx])
            t0 = time.perf_counter()
            try:
                value = _supervised_call(
                    (fn, items[idx], spec, None, 0, False, trace,
                     current_trace_id())
                )
                value = self._unwrap_traced(tracer, value, idx, attempts[idx], None)
            except Exception as exc:
                outcomes.append(
                    _Outcome(
                        "fail",
                        error=self._classify(exc, idx),
                        duration=time.perf_counter() - t0,
                    )
                )
                continue
            duration = time.perf_counter() - t0
            if self.policy.timeout is not None and duration > self.policy.timeout:
                error = TaskTimeoutError(
                    f"task {idx} ran {duration:.3f}s, past the "
                    f"{self.policy.timeout}s timeout (in-process execution "
                    f"cannot be preempted; flagged post-hoc)"
                )
                outcomes.append(_Outcome("fail", error=error, duration=duration))
            else:
                outcomes.append(_Outcome("ok", value=value, duration=duration))
        return outcomes

    def _run_pool(self, fn, items, pending, attempts, tracer, pool, *, sentinel) -> list[_Outcome]:
        """One round over the backend's worker pool.

        ``sentinel=True`` (process pools) plants the shared flag array
        for crash attribution; thread pools deliver exceptions in-band
        and need no flags.
        """
        trace = tracer.enabled
        flags_shm = None
        flags = None
        if sentinel:
            flags_shm = shared_memory.SharedMemory(create=True, size=max(len(pending), 1))
            flags = np.ndarray((flags_shm.size,), dtype=np.uint8, buffer=flags_shm.buf)
            flags[:] = _IDLE
        # Zero-copy item transport rides under supervision unchanged:
        # when the backend moves batch items by shared memory, pack the
        # round's items here and let _supervised_call materialize them.
        packed = sentinel and getattr(self.backend, "_batch_shm_items", False)
        item_shms: list = []
        round_items = [items[idx] for idx in pending]
        try:
            if packed:
                round_items, _ = pack_batch_items(round_items, item_shms)
            submit_ts = tracer.now() if trace else None
            trace_id = current_trace_id()
            futures = []
            for slot, idx in enumerate(pending):
                spec = self._spec(idx, attempts[idx])
                payload = (
                    fn,
                    round_items[slot],
                    spec,
                    flags_shm.name if sentinel else None,
                    slot,
                    packed,
                    trace,
                    trace_id,
                )
                try:
                    futures.append(pool.submit(_supervised_call, payload))
                except (RuntimeError, BrokenExecutor):
                    # The pool died (or was shut down) before this task
                    # entered it: collateral, rerun for free next round.
                    futures.append(None)
            broke = False
            timed_out = False
            raw: list = []
            for slot, (idx, fut) in enumerate(zip(pending, futures)):
                if fut is None:
                    broke = True
                    raw.append(_Outcome("free"))
                    continue
                t0 = time.perf_counter()
                try:
                    value = fut.result(timeout=self.policy.timeout)
                    value = self._unwrap_traced(tracer, value, idx, attempts[idx], submit_ts)
                    raw.append(
                        _Outcome("ok", value=value, duration=time.perf_counter() - t0)
                    )
                except _FuturesTimeout:
                    timed_out = True
                    error = TaskTimeoutError(
                        f"task {idx} exceeded the {self.policy.timeout}s timeout"
                    )
                    raw.append(
                        _Outcome("fail", error=error, duration=time.perf_counter() - t0)
                    )
                except (BrokenExecutor, CancelledError) as exc:
                    # Pool breakage poisons every outstanding future;
                    # attribution is resolved below via the sentinel.
                    broke = True
                    duration = time.perf_counter() - t0
                    started = sentinel and flags is not None and flags[slot] == _STARTED
                    if started and len(pending) == 1:
                        # The task was alone on the pool: exact
                        # attribution, consume its attempt.
                        error = WorkerCrashError(
                            f"worker died while task {idx} was running"
                        )
                        error.__cause__ = exc
                        raw.append(_Outcome("fail", error=error, duration=duration))
                    elif started:
                        # Mid-run during someone's crash — could be the
                        # crasher, could be collateral on a healthy
                        # worker torn down with the pool. Rerun in
                        # isolation to find out.
                        raw.append(_Outcome("suspect", duration=duration))
                    else:
                        raw.append(_Outcome("free", duration=duration))
                except Exception as exc:
                    raw.append(
                        _Outcome(
                            "fail",
                            error=self._classify(exc, idx),
                            duration=time.perf_counter() - t0,
                        )
                    )
            if broke and sentinel and not any(
                o.kind == "suspect"
                or (o.kind == "fail" and isinstance(o.error, WorkerCrashError))
                for o in raw
            ):
                # Breakage with no task observed mid-run (a worker died
                # between tasks, or flags were lost): escalate the
                # collaterals to suspects so the isolation rounds keep
                # the round count bounded.
                for slot, outcome in enumerate(raw):
                    if outcome.kind == "free":
                        raw[slot] = _Outcome("suspect", duration=outcome.duration)
            if broke or (timed_out and sentinel):
                # A broken pool is unusable; a hung process worker would
                # wedge later rounds. Respawn before retrying. (Thread
                # pools survive both: a timed-out thread just finishes
                # late.)
                respawn = getattr(self.backend, "_respawn_pool", None)
                if respawn is not None:
                    if trace:
                        tracer.instant(
                            "pool_respawn",
                            "fault",
                            args={
                                "backend": getattr(self.backend, "name", "?"),
                                "broke": broke,
                                "timed_out": timed_out,
                            },
                        )
                        tracer.metrics.counter("supervisor.pool_respawns").inc()
                    log = current_log()
                    if log.enabled:
                        log.event(
                            "supervisor.pool_respawn",
                            backend=getattr(self.backend, "name", "?"),
                            broke=broke,
                            timed_out=timed_out,
                        )
                    respawn()
                    # the torn-down pool's pids may be recycled by the
                    # OS: retire their trace lanes so replacement
                    # workers get fresh rows
                    if trace:
                        tracer.bump_lane_epoch()
            return raw
        finally:
            for item_shm in item_shms:
                item_shm.close()
                try:
                    item_shm.unlink()
                except FileNotFoundError:  # pragma: no cover - defensive
                    pass
            if flags_shm is not None:
                flags_shm.close()
                try:
                    flags_shm.unlink()
                except FileNotFoundError:
                    # A dying worker's dangling resource-tracker
                    # registration can unlink first; gone is gone.
                    pass

    @staticmethod
    def _classify(exc, idx) -> ExecutionError:
        """Wrap a task-raised exception in the execution taxonomy with
        ``__cause__`` chaining."""
        if isinstance(exc, InjectedCrashError):
            error: ExecutionError = WorkerCrashError(
                f"task {idx} crashed (simulated in-process crash)"
            )
        else:
            error = ExecutionError(
                f"task {idx} raised {type(exc).__name__}: {exc}"
            )
        error.__cause__ = exc
        return error


def supervised_submit_batch(
    backend,
    fn,
    items,
    *,
    policy: RetryPolicy | None = None,
    fault_plan: FaultPlan | None = None,
    validate=None,
    tracer=None,
):
    """One-shot convenience: ``Supervisor(backend, policy,
    fault_plan).submit_batch(fn, items, validate=validate)``."""
    return Supervisor(backend, policy, fault_plan, tracer=tracer).submit_batch(
        fn, items, validate=validate
    )
