"""Deterministic fault injection: what breaks, where, and on which attempt.

A :class:`FaultPlan` is an explicit, picklable description of the
faults a test (or a CI smoke run) wants injected into supervised
execution — *never* a source of randomness at execution time. Each
:class:`FaultSpec` names a task index, the attempt it fires on, and one
of four kinds:

* ``"crash"`` — take the worker down. Inside a process-pool worker this
  is a genuine ``os._exit`` (the parent sees ``BrokenProcessPool``); on
  a thread or in-process run it raises :class:`InjectedCrashError`
  instead, because a thread cannot die without taking the interpreter
  (and the test suite) with it.
* ``"sleep"`` — stall for ``duration`` seconds before running the task,
  driving the supervisor's timeout path without flaky ad-hoc sleeps in
  tests.
* ``"raise"`` — raise :class:`InjectedFaultError` instead of running
  the task: the transient-failure path.
* ``"corrupt"`` — run the task, then mutate its result (negated
  ``weights`` for coreset-shaped results) so result validation has
  something real to catch.

Plans are deterministic by construction: a spec either matches a
``(task index, attempt)`` pair or it does not, so every recovery path
is exercised identically on every run and on every backend. The
seed-driven constructor :meth:`FaultPlan.random` derives its specs from
a ``numpy`` generator once, up front — the resulting plan is as
explicit as a hand-written one.

``REPRO_FAULT_PLAN`` (see :meth:`FaultPlan.from_env`) lets CI inject a
plan into :func:`repro.shard.shard_and_solve` without touching code::

    REPRO_FAULT_PLAN="crash@1,raise@3#2,sleep@0:0.5"
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import time
from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidParameterError, ReproError

_KINDS = ("crash", "sleep", "raise", "corrupt")


class InjectedFaultError(ReproError):
    """The transient failure raised by a ``"raise"`` fault spec."""


class InjectedCrashError(ReproError):
    """The simulated worker crash raised by a ``"crash"`` fault spec on
    substrates where a real crash would kill the test process (threads,
    serial in-process execution)."""


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: ``kind`` fires for task ``index`` on attempt
    ``attempt`` (1-based; ``None`` = every attempt). ``duration`` is the
    stall in seconds for ``"sleep"`` faults."""

    kind: str
    index: int
    attempt: int | None = 1
    duration: float = 0.0

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise InvalidParameterError(
                f"unknown fault kind {self.kind!r}; expected one of {_KINDS}"
            )
        if int(self.index) < 0:
            raise InvalidParameterError(f"fault index must be >= 0, got {self.index!r}")
        if self.attempt is not None and int(self.attempt) < 1:
            raise InvalidParameterError(
                f"fault attempt must be >= 1 (or None for every attempt), "
                f"got {self.attempt!r}"
            )
        if float(self.duration) < 0.0:
            raise InvalidParameterError(
                f"fault duration must be >= 0, got {self.duration!r}"
            )

    def matches(self, index: int, attempt: int) -> bool:
        return self.index == index and (self.attempt is None or self.attempt == attempt)


@dataclass(frozen=True)
class FaultPlan:
    """An ordered collection of :class:`FaultSpec`; the first spec
    matching a ``(task, attempt)`` pair wins."""

    specs: tuple

    def __post_init__(self):
        specs = tuple(self.specs)
        for spec in specs:
            if not isinstance(spec, FaultSpec):
                raise InvalidParameterError(f"fault plan entries must be FaultSpec, got {spec!r}")
        object.__setattr__(self, "specs", specs)

    def lookup(self, index: int, attempt: int) -> FaultSpec | None:
        """The fault (if any) to inject into ``index``'s ``attempt``-th run."""
        for spec in self.specs:
            if spec.matches(index, attempt):
                return spec
        return None

    def __len__(self) -> int:
        return len(self.specs)

    # -- constructors -------------------------------------------------------

    @classmethod
    def single(cls, kind: str, index: int = 0, *, attempt: int | None = 1,
               duration: float = 0.0) -> "FaultPlan":
        """One fault on one task — the common test-matrix case."""
        return cls(specs=(FaultSpec(kind, index, attempt=attempt, duration=duration),))

    @classmethod
    def random(cls, seed, n_tasks: int, *, n_faults: int = 1,
               kinds=("crash", "raise"), duration: float = 0.0) -> "FaultPlan":
        """Seed-driven plan: ``n_faults`` distinct first-attempt faults over
        ``n_tasks`` tasks, kinds drawn round-robin-free from ``kinds``.
        Deterministic — the generator is consumed here, not at fire time."""
        if int(n_tasks) < 1:
            raise InvalidParameterError(f"n_tasks must be >= 1, got {n_tasks!r}")
        n_faults = int(n_faults)
        if not 0 <= n_faults <= int(n_tasks):
            raise InvalidParameterError(
                f"n_faults must be in [0, {n_tasks}], got {n_faults!r}"
            )
        rng = np.random.default_rng(seed)
        targets = rng.choice(int(n_tasks), size=n_faults, replace=False)
        picks = rng.integers(0, len(tuple(kinds)), size=n_faults)
        kinds = tuple(kinds)
        return cls(specs=tuple(
            FaultSpec(kinds[int(k)], int(t), attempt=1, duration=duration)
            for t, k in zip(targets, picks)
        ))

    @classmethod
    def from_env(cls, var: str = "REPRO_FAULT_PLAN") -> "FaultPlan | None":
        """Parse a plan from the environment (``None`` when unset/empty).

        Grammar, comma-separated: ``KIND@INDEX[:DURATION][#ATTEMPT]``
        with ``#*`` meaning every attempt — e.g.
        ``"crash@1,sleep@0:0.5,raise@3#2,corrupt@2#*"``.
        """
        raw = os.environ.get(var, "").strip()
        if not raw:
            return None
        specs = []
        for token in raw.split(","):
            token = token.strip()
            if not token:
                continue
            try:
                kind, _, rest = token.partition("@")
                attempt: int | None = 1
                if "#" in rest:
                    rest, _, att = rest.partition("#")
                    attempt = None if att.strip() == "*" else int(att)
                duration = 0.0
                if ":" in rest:
                    rest, _, dur = rest.partition(":")
                    duration = float(dur)
                specs.append(
                    FaultSpec(kind.strip(), int(rest), attempt=attempt, duration=duration)
                )
            except (ValueError, InvalidParameterError) as exc:
                raise InvalidParameterError(
                    f"{var} entry {token!r} is not KIND@INDEX[:DURATION][#ATTEMPT] "
                    f"with KIND in {_KINDS}"
                ) from exc
        return cls(specs=tuple(specs)) if specs else None


# -- worker-side application (module-level: must pickle to process pools) ----


def in_worker_process() -> bool:
    """Whether we are inside a multiprocessing child — where a ``crash``
    fault may genuinely take the process down."""
    return multiprocessing.parent_process() is not None


def apply_fault_before(spec: FaultSpec | None) -> None:
    """Fire the pre-execution side of ``spec`` (crash / sleep / raise)."""
    if spec is None:
        return
    if spec.kind == "sleep":
        time.sleep(spec.duration)
    elif spec.kind == "raise":
        raise InjectedFaultError(
            f"injected transient fault on task {spec.index}"
        )
    elif spec.kind == "crash":
        if in_worker_process():
            # A real crash: the parent observes BrokenProcessPool.
            os._exit(13)
        raise InjectedCrashError(f"injected worker crash on task {spec.index}")


def apply_fault_after(spec: FaultSpec | None, result):
    """Fire the post-execution side of ``spec`` (result corruption)."""
    if spec is None or spec.kind != "corrupt":
        return result
    return corrupt_result(result)


def corrupt_result(result):
    """Deterministically damage a task result.

    Results carrying a ``weights`` ndarray (coresets) get it negated —
    exactly the damage the shard pipeline's result validation must
    catch. Bare arrays are negated; anything else is replaced with
    ``None`` (a shape the caller cannot mistake for success).
    """
    weights = getattr(result, "weights", None)
    if isinstance(weights, np.ndarray) and dataclasses.is_dataclass(result):
        return dataclasses.replace(result, weights=-weights)
    if isinstance(result, np.ndarray):
        return -result
    return None
