"""Blocking HTTP client for the serving tier (tests, examples, scripts).

A thin ``http.client`` wrapper speaking the :mod:`repro.serve.server`
JSON API. Each call opens one connection — simple and stateless; the
concurrency-hungry path (load generation) uses the asyncio client in
:mod:`repro.serve.loadgen` instead.
"""

from __future__ import annotations

import http.client
import json
import time

import numpy as np

from repro.errors import ReproError


class ServeError(ReproError):
    """The server answered with an error status; carries it as ``status``."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServeClient:
    """Blocking client for one server address.

    Mutating calls raise :class:`ServeError` on non-2xx responses;
    ``raw_request`` returns ``(status, payload)`` untouched for callers
    that want to observe 4xx behavior (backpressure tests).
    """

    def __init__(self, host: str, port: int, *, timeout: float = 30.0):
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)

    # -- transport ----------------------------------------------------------

    def raw_request(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        *,
        headers: dict | None = None,
    ):
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            payload = None if body is None else json.dumps(body)
            send_headers = {"Content-Type": "application/json", "Connection": "close"}
            if headers:
                send_headers.update(headers)
            conn.request(method, path, body=payload, headers=send_headers)
            resp = conn.getresponse()
            data = resp.read()
            return resp.status, json.loads(data) if data else {}
        finally:
            conn.close()

    def _request(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        *,
        headers: dict | None = None,
    ) -> dict:
        status, payload = self.raw_request(method, path, body, headers=headers)
        if status >= 400:
            raise ServeError(status, str(payload.get("error", payload)))
        return payload

    # -- API ----------------------------------------------------------------

    def health(self) -> dict:
        return self._request("GET", "/health")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")

    def submit_points(self, points, weights=None) -> dict:
        body = {"points": np.asarray(points, dtype=float).tolist()}
        if weights is not None:
            body["weights"] = np.asarray(weights, dtype=float).tolist()
        return self._request("POST", "/instances", body)

    def solve(
        self,
        *,
        instance_id=None,
        points=None,
        weights=None,
        trace_id=None,
        **params,
    ) -> dict:
        """Submit a solve; ``trace_id`` rides in ``X-Repro-Trace-Id`` so
        the caller picks the request's trace id instead of the server
        minting one."""
        body = dict(params)
        if instance_id is not None:
            body["instance_id"] = instance_id
        if points is not None:
            body["points"] = np.asarray(points, dtype=float).tolist()
            if weights is not None:
                body["weights"] = np.asarray(weights, dtype=float).tolist()
        headers = {"X-Repro-Trace-Id": str(trace_id)} if trace_id is not None else None
        return self._request("POST", "/solve", body, headers=headers)

    def poll(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def trace(self, job_id: str) -> dict:
        """The stitched request trace for a job (server must be tracing)."""
        return self._request("GET", f"/trace/{job_id}")

    def wait(self, job_id: str, *, timeout: float = 60.0, interval: float = 0.01) -> dict:
        """Poll until the job is terminal; raises on timeout or failure."""
        deadline = time.perf_counter() + timeout
        while True:
            job = self.poll(job_id)
            if job["status"] == "done":
                return job
            if job["status"] == "failed":
                raise ServeError(500, f"job {job_id} failed: {job.get('error')}")
            if time.perf_counter() >= deadline:
                raise ServeError(
                    504, f"job {job_id} still {job['status']} after {timeout}s"
                )
            time.sleep(interval)

    def solve_and_wait(self, *, timeout: float = 60.0, **kwargs) -> dict:
        """Submit and block until the result is available."""
        job = self.solve(**kwargs)
        if job["status"] == "done":
            return job
        return self.wait(job["job_id"], timeout=timeout)

    def shutdown(self) -> dict:
        return self._request("POST", "/shutdown")
