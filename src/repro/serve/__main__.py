"""Server CLI: ``python -m repro.serve`` boots the serving tier.

Runs until interrupted (or until a client POSTs ``/shutdown``). The
chosen port is printed once the listener is up — pass ``--port 0`` to
let the OS pick a free one.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import threading

from repro.faults.plan import FaultPlan
from repro.serve.server import ServerConfig, SolveServer


def _parse_fault_plan(spec: str) -> FaultPlan | None:
    """Parse a CLI fault-plan spec through the one canonical grammar
    (:meth:`FaultPlan.from_env`) instead of duplicating it here."""
    var = "_REPRO_SERVE_CLI_FAULT_PLAN"
    os.environ[var] = spec
    try:
        return FaultPlan.from_env(var)
    finally:
        del os.environ[var]


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8000, help="0 picks a free port")
    parser.add_argument("--workers", type=int, default=2, help="solve worker threads")
    parser.add_argument("--queue-size", type=int, default=64)
    parser.add_argument(
        "--backend", default="process",
        help="execution backend shared by all solves (serial/thread/process)",
    )
    parser.add_argument("--backend-workers", type=int, default=None)
    parser.add_argument(
        "--budget-mib", type=float, default=256.0,
        help="admission budget per request, MiB",
    )
    parser.add_argument(
        "--cache-mib", type=float, default=64.0,
        help="byte budget for each of the instance and result caches, MiB",
    )
    parser.add_argument(
        "--fault-plan", default=None,
        help="deterministic fault injection spec (KIND@INDEX[:DUR][#ATTEMPT])",
    )
    args = parser.parse_args(argv)

    config = ServerConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_size=args.queue_size,
        backend=args.backend,
        backend_workers=args.backend_workers,
        budget_bytes=int(args.budget_mib * 2**20),
        cache_bytes=int(args.cache_mib * 2**20),
        fault_plan=_parse_fault_plan(args.fault_plan) if args.fault_plan else None,
    )
    server = SolveServer(config)
    ready = threading.Event()

    def _announce():
        ready.wait()
        print(f"repro.serve listening on http://{server.host}:{server.port}")

    threading.Thread(target=_announce, daemon=True).start()
    try:
        asyncio.run(server.run(ready=ready))
    except KeyboardInterrupt:
        pass


if __name__ == "__main__":
    main()
