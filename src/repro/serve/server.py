"""The asyncio serving tier: JSON/HTTP over ``shard_and_solve``.

:class:`SolveServer` is a stdlib-only asyncio HTTP/1.1 server (no
FastAPI dependency — the API surface is FastAPI-shaped JSON, the
transport is ``asyncio.start_server``) exposing the batch solver stack
as an always-on service:

==========================  ================================================
``GET /health``             liveness + queue/cache/worker stats
``GET /metrics``            metrics-registry snapshot (counters/histograms)
``POST /instances``         upload a point payload; content-hash dedup +
                            admission control (413 over budget)
``POST /solve``             submit a solve; result-cache hit answers
                            immediately, identical in-flight requests
                            coalesce, queue-full is 429 backpressure
``GET /jobs/<id>``          poll a job: queued/running/done/failed
``POST /shutdown``          stop the server (drains the queue first)
==========================  ================================================

Requests flow **admission → cache → queue → worker pool**: an async
job queue (bounded — the 429 is real backpressure, not a buffer) drains
into ``asyncio`` worker tasks that hand each job to an executor thread
running :class:`~repro.serve.jobs.SolveRunner` on the server's shared
execution backend (:class:`~repro.pram.backends.ProcessBackend` by
default). Solves run under the PR 6 supervised-retry contract, so a
crashed worker process retries with byte-identical recovery and the
client never sees the crash.

Every request is traced (``cat="serve"`` spans via the ambient
:func:`repro.obs.current_tracer`) and counted in a server-owned
:class:`~repro.obs.MetricsRegistry`; request/solve latencies go through
the reservoir-sampled histograms so a long-lived server's p50/p99
reflect the whole run, not its warm-up.
"""

from __future__ import annotations

import asyncio
import json
import re
import threading
import time
import urllib.parse
from dataclasses import dataclass, field

from repro.errors import InvalidParameterError, ReproError
from repro.faults.plan import FaultPlan
from repro.faults.supervisor import RetryPolicy
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS_S,
    MetricsRegistry,
    SloEvaluator,
    SloTarget,
    current_log,
    current_tracer,
    new_trace_id,
    render_prometheus,
    trace_context,
)
from repro.pram.backends import Backend, fn_picklable, make_backend
from repro.serve.cache import (
    AdmissionController,
    AdmissionError,
    LruBytesCache,
    store_points,
)
from repro.serve.jobs import JobTable, SolveRunner, normalize_params

_JSON = "application/json"


@dataclass
class ServerConfig:
    """Everything a :class:`SolveServer` needs, in one picklable bag.

    ``backend`` may be a registry name (the server then owns and closes
    the pool) or a live :class:`~repro.pram.backends.Backend` (borrowed;
    the caller keeps ownership). ``queue_size`` bounds accepted-but-
    unstarted jobs — the backpressure knob. ``budget_bytes`` gates
    admission, ``cache_bytes`` bounds each LRU cache. ``fault_plan``
    injects deterministic faults into every served solve (tests/CI;
    ``None`` defers to ``REPRO_FAULT_PLAN``). ``solve_fn`` overrides
    the runner for tests: a callable ``(instance, params) -> dict``.
    ``slo`` (an :class:`~repro.obs.SloTarget`, default off) makes
    ``/health`` grade a sliding window of served-solve terminals and
    answer 503 with reasons when degraded.
    """

    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 2
    queue_size: int = 64
    backend: "str | Backend" = "process"
    backend_workers: int | None = None
    budget_bytes: int = 256 * 2**20
    cache_bytes: int = 64 * 2**20
    retry_policy: RetryPolicy | None = None
    fault_plan: FaultPlan | None = None
    read_timeout_s: float = 30.0
    defaults: dict = field(default_factory=dict)
    solve_fn: object = None
    slo: SloTarget | None = None


class _HttpError(Exception):
    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Shape an incoming ``X-Repro-Trace-Id`` must have to be honored; a
#: header that fails this (or is absent) gets a freshly minted id.
_TRACE_ID_RE = re.compile(r"[A-Za-z0-9_.:-]{1,128}")

#: Prometheus text exposition content type.
_PROM_TEXT = "text/plain; version=0.0.4; charset=utf-8"


class _TextPayload:
    """A non-JSON response body (``/metrics?format=prometheus``)."""

    __slots__ = ("text", "content_type")

    def __init__(self, text: str, content_type: str = _PROM_TEXT):
        self.text = text
        self.content_type = content_type


class SolveServer:
    """One serving tier instance. See the module docstring for the API."""

    def __init__(self, config: ServerConfig | None = None):
        self.config = config if config is not None else ServerConfig()
        self.metrics = MetricsRegistry()
        self.admission = AdmissionController(self.config.budget_bytes)
        self.instances = LruBytesCache(self.config.cache_bytes)
        self.results = LruBytesCache(self.config.cache_bytes)
        self.jobs = JobTable()
        if isinstance(self.config.backend, Backend):
            self.backend = self.config.backend
            self._owns_backend = False
        else:
            self.backend = make_backend(
                self.config.backend, num_workers=self.config.backend_workers
            )
            self._owns_backend = True
        self.runner = SolveRunner(
            self.backend,
            retry_policy=self.config.retry_policy,
            fault_plan=self.config.fault_plan,
        )
        # Picklability probe (the cached repro.pram probe): a custom
        # solve_fn that cannot cross a process pool is fine — supervised
        # execution falls back inline — but worth surfacing as a gauge
        # so capacity surprises are diagnosable from /metrics.
        solve = self.config.solve_fn if self.config.solve_fn is not None else self.runner.solve
        self.metrics.gauge("serve.solve_fn_picklable").set(float(fn_picklable(solve)))
        self._solve = solve
        self.slo = (
            SloEvaluator(self.config.slo) if self.config.slo is not None else None
        )
        self._queue: asyncio.Queue | None = None
        self._executor = None
        self._server: asyncio.AbstractServer | None = None
        self._worker_tasks: list = []
        self._stop_event: asyncio.Event | None = None
        self._started_s = time.perf_counter()
        self.host = self.config.host
        self.port = self.config.port

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        from concurrent.futures import ThreadPoolExecutor

        self._queue = asyncio.Queue(maxsize=self.config.queue_size)
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers, thread_name_prefix="serve-worker"
        )
        self._stop_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_conn, self.config.host, self.config.port
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        self._started_s = time.perf_counter()
        self._worker_tasks = [
            asyncio.create_task(self._worker(i)) for i in range(self.config.workers)
        ]

    async def run(self, *, ready: "threading.Event | None" = None) -> None:
        """Start, signal readiness, serve until :meth:`request_stop`."""
        await self.start()
        if ready is not None:
            ready.set()
        await self._stop_event.wait()
        await self.shutdown()

    def request_stop(self) -> None:
        if self._stop_event is not None:
            self._stop_event.set()

    async def shutdown(self) -> None:
        """Drain and stop: close the listener, finish queued jobs, stop
        workers, release the executor and (when owned) the backend.

        Ordering matters — the backend closes *last*, after every
        worker that could still submit batches to it has exited, and
        idempotently, so a shared/cached backend already swept by
        ``_close_shared_backends`` is tolerated (and vice versa)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._queue is not None:
            await self._queue.join()
        for task in self._worker_tasks:
            task.cancel()
        if self._worker_tasks:
            await asyncio.gather(*self._worker_tasks, return_exceptions=True)
        self._worker_tasks = []
        self.jobs.fail_queued("server stopped before the job ran")
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._owns_backend:
            self.backend.close()

    # -- workers ------------------------------------------------------------

    async def _worker(self, index: int) -> None:
        assert self._queue is not None
        loop = asyncio.get_running_loop()
        while True:
            job = await self._queue.get()
            try:
                # re-enter the job's request context: the worker task
                # outlives any one request, so the trace id rides on the
                # job, not on this task's ambient state
                with trace_context(job.trace_id):
                    await self._run_job(loop, job)
            finally:
                self._queue.task_done()

    async def _run_job(self, loop, job) -> None:
        job.status = "running"
        job.started_s = time.perf_counter()
        tracer = current_tracer()
        if tracer.enabled:
            # queued → dequeued, on the job's trace. perf_counter and
            # the tracer share CLOCK_MONOTONIC, so the job's submit
            # timestamp is already on the trace's time axis.
            tracer.complete(
                "serve.queue_wait",
                "serve",
                int(job.submitted_s * 1e6),
                int((job.started_s - job.submitted_s) * 1e6),
                args={"job": job.job_id},
            )
        instance = self.instances.get(job.instance_id)
        if instance is None:
            self.jobs.finish(
                job, error="instance evicted from cache before the solve ran"
            )
            self.metrics.counter("serve.jobs_failed").inc()
            self._slo_record(job, error=True)
            return
        try:
            result = await loop.run_in_executor(
                self._executor, self._solve_traced, instance, job
            )
        except Exception as exc:
            self.jobs.finish(job, error=f"{type(exc).__name__}: {exc}")
            self.metrics.counter("serve.jobs_failed").inc()
            self._slo_record(job, error=True)
            return
        self.results.put(job.key, result, _result_nbytes(result))
        self.jobs.finish(job, result=result)
        self.metrics.counter("serve.jobs_completed").inc()
        self.metrics.histogram("serve.solve_latency_s").observe(
            time.perf_counter() - job.started_s
        )
        self._slo_record(job, error=False)

    def _slo_record(self, job, *, error: bool) -> None:
        """Feed one job terminal into the SLO window (submit → finish)."""
        if self.slo is not None:
            end = job.finished_s if job.finished_s is not None else time.perf_counter()
            self.slo.record(max(end - job.submitted_s, 0.0), error=error)

    def _solve_traced(self, instance, job):
        tracer = current_tracer()
        # executor threads have no request context of their own — adopt
        # the job's, so every span the solve emits (pram primitives,
        # shard stages, backend exec, supervisor marks) is stamped with
        # the request's trace id
        with trace_context(job.trace_id):
            with tracer.span(
                "serve.solve",
                "serve",
                {"job": job.job_id, "n": instance.meta["n"], "solver": job.params["solver"]},
            ):
                return self._solve(instance, job.params)

    # -- HTTP ---------------------------------------------------------------

    async def _handle_conn(self, reader, writer) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, headers, body = request
                t0 = time.perf_counter()
                tracer = current_tracer()
                # honor a well-formed incoming X-Repro-Trace-Id (caller
                # joins this hop into a wider trace); mint otherwise
                offered = headers.get("x-repro-trace-id", "").strip()
                trace_id = (
                    offered if _TRACE_ID_RE.fullmatch(offered) else new_trace_id()
                )
                status = 500
                try:
                    with trace_context(trace_id):
                        with tracer.span(
                            "serve.request",
                            "serve",
                            args := {"method": method, "path": path},
                        ):
                            status, payload = await self._route(
                                method, path, body, trace_id=trace_id
                            )
                            args["status"] = status
                finally:
                    dur = time.perf_counter() - t0
                    self.metrics.counter("serve.requests_total").inc()
                    self.metrics.counter(
                        "serve.requests_by_status", labels={"status": str(status)}
                    ).inc()
                    if status >= 400:
                        self.metrics.counter("serve.requests_errored").inc()
                    self.metrics.histogram(
                        "serve.request_latency_s",
                        buckets=DEFAULT_LATENCY_BUCKETS_S,
                    ).observe(dur)
                    if self.slo is not None and status >= 500:
                        # infra errors count against the SLO even when
                        # no job ever existed to record a terminal
                        self.slo.record(dur, error=True)
                    log = current_log()
                    if log.enabled:
                        log.event(
                            "serve.request",
                            method=method,
                            path=path,
                            status=status,
                            dur_s=round(dur, 6),
                            trace_id=trace_id,
                        )
                keep = headers.get("connection", "keep-alive").lower() != "close"
                await self._write_response(
                    writer, status, payload, keep_alive=keep, trace_id=trace_id
                )
                if not keep:
                    break
        except (
            asyncio.IncompleteReadError,
            asyncio.TimeoutError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _read_request(self, reader):
        try:
            line = await asyncio.wait_for(
                reader.readline(), timeout=self.config.read_timeout_s
            )
        except asyncio.TimeoutError:
            return None
        if not line:
            return None
        try:
            method, path, _version = line.decode("latin-1").split(None, 2)
        except ValueError:
            return None
        headers = {}
        while True:
            raw = await asyncio.wait_for(
                reader.readline(), timeout=self.config.read_timeout_s
            )
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        body = b""
        if length:
            body = await asyncio.wait_for(
                reader.readexactly(length), timeout=self.config.read_timeout_s
            )
        return method.upper(), path, headers, body

    async def _write_response(
        self, writer, status, payload, *, keep_alive, trace_id=None
    ) -> None:
        if isinstance(payload, _TextPayload):
            body = payload.text.encode("utf-8")
            content_type = payload.content_type
        else:
            body = json.dumps(payload).encode("utf-8")
            content_type = _JSON
        # the trace id always rides the response header, even on errors
        # whose JSON carries none — curl -i is enough to correlate
        trace_header = f"X-Repro-Trace-Id: {trace_id}\r\n" if trace_id else ""
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{trace_header}"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    # -- routing ------------------------------------------------------------

    async def _route(self, method, path, body, trace_id=None):
        path, _, query_str = path.partition("?")
        try:
            if path == "/health" and method == "GET":
                return self._health()
            if path == "/metrics" and method == "GET":
                query = urllib.parse.parse_qs(query_str)
                if query.get("format", ["json"])[0] == "prometheus":
                    return 200, _TextPayload(render_prometheus(self.metrics))
                return 200, self._metrics_payload()
            if path == "/instances" and method == "POST":
                return self._post_instance(_parse_json(body))
            if path == "/solve" and method == "POST":
                return self._post_solve(_parse_json(body), trace_id=trace_id)
            if path.startswith("/jobs/") and method == "GET":
                return self._get_job(path[len("/jobs/"):])
            if path.startswith("/trace/") and method == "GET":
                return self._get_trace(path[len("/trace/"):])
            if path == "/shutdown" and method == "POST":
                asyncio.get_running_loop().call_soon(self.request_stop)
                return 202, {"status": "stopping"}
            if path in ("/health", "/metrics", "/instances", "/solve", "/shutdown"):
                return 405, {"error": f"{method} not allowed on {path}"}
            return 404, {"error": f"no route {method} {path}"}
        except _HttpError as exc:
            return exc.status, {"error": exc.message}
        except AdmissionError as exc:
            self.metrics.counter("serve.rejected_admission").inc()
            return 413, {"error": str(exc)}
        except (InvalidParameterError, ReproError) as exc:
            return 400, {"error": str(exc)}
        except Exception as exc:  # pragma: no cover - last-resort guard
            return 500, {"error": f"{type(exc).__name__}: {exc}"}

    def _health(self):
        payload = {
            "status": "ok",
            "uptime_s": time.perf_counter() - self._started_s,
            "workers": self.config.workers,
            "backend": getattr(self.backend, "name", "?"),
            "queue_depth": self._queue.qsize() if self._queue is not None else 0,
            "queue_capacity": self.config.queue_size,
            "jobs": self.jobs.counts(),
            "instances": self.instances.stats(),
            "results": self.results.stats(),
        }
        if self.slo is not None:
            verdict = self.slo.evaluate()
            payload["slo"] = verdict.to_json()
            if verdict.degraded:
                # 503 with reasons: load balancers drain the instance,
                # humans read why. An under-sampled window is "ok" —
                # a cold service is not a degraded one.
                payload["status"] = "degraded"
                return 503, payload
        return 200, payload

    def _metrics_payload(self) -> dict:
        snap = self.metrics.snapshot()
        snap["caches"] = {
            "instances": self.instances.stats(),
            "results": self.results.stats(),
        }
        return snap

    def _post_instance(self, body: dict):
        stored, created = self._admit_and_store(body)
        return 200, {
            "instance_id": stored.instance_id,
            "cached": not created,
            "n": stored.meta["n"],
            "dim": stored.meta["dim"],
            "bytes": stored.nbytes,
        }

    def _admit_and_store(self, body: dict):
        if "points" not in body:
            raise _HttpError(400, "instance payload requires 'points'")
        points = body["points"]
        try:
            n, dim = len(points), len(points[0])
        except (TypeError, IndexError) as exc:
            raise _HttpError(400, f"points must be a non-empty (n, dim) nested list: {exc}")
        self.admission.admit_instance(n, dim)
        stored = store_points(points, body.get("weights"))
        if self.instances.get(stored.instance_id) is not None:
            return stored, False
        self.instances.put(stored.instance_id, stored, stored.nbytes)
        self.metrics.counter("serve.instances_stored").inc()
        return stored, True

    def _post_solve(self, body: dict, trace_id=None):
        body = dict(body)
        inline = body.pop("points", None)
        inline_w = body.pop("weights", None)
        instance_id = body.pop("instance_id", None)
        if (inline is None) == (instance_id is None):
            raise _HttpError(400, "pass exactly one of 'instance_id' or 'points'")
        if inline is not None:
            stored, _ = self._admit_and_store({"points": inline, "weights": inline_w})
            instance_id = stored.instance_id
        else:
            stored = self.instances.get(instance_id)
            if stored is None:
                raise _HttpError(404, f"unknown instance_id {instance_id!r}")
        params = normalize_params(body, defaults=self.config.defaults)
        self.admission.admit_solve(
            stored.meta["n"],
            stored.meta["dim"],
            k=params["k"],
            shards=params["shards"],
            coreset_size=params["coreset_size"],
            neighbors=params["neighbors"],
        )
        from repro.serve.cache import result_key

        cached = self.results.get(result_key(instance_id, params))
        if cached is not None:
            job = self.jobs.add_completed(
                instance_id, params, cached, trace_id=trace_id
            )
            self.metrics.counter("serve.result_cache_hits").inc()
            self._slo_record(job, error=False)
            return 200, job.to_json()
        job, fresh = self.jobs.create(instance_id, params, trace_id=trace_id)
        if not fresh:
            self.metrics.counter("serve.coalesced").inc()
            payload = job.to_json()
            payload["coalesced"] = True
            return 202, payload
        try:
            self._queue.put_nowait(job)
        except asyncio.QueueFull:
            self.jobs.finish(job, error="queue full (backpressure)")
            self.metrics.counter("serve.rejected_backpressure").inc()
            return 429, {
                "error": (
                    f"job queue full ({self.config.queue_size} pending); "
                    "retry with backoff"
                )
            }
        self.metrics.counter("serve.jobs_enqueued").inc()
        return 202, job.to_json()

    def _get_job(self, job_id: str):
        job = self.jobs.get(job_id)
        if job is None:
            return 404, {"error": f"unknown job_id {job_id!r}"}
        return 200, job.to_json()

    def _get_trace(self, job_id: str):
        """Stitch and return one job's cross-process request trace.

        Needs an active file-backed tracer (the trace events live in
        its JSONL, not in server memory) — without one the answer is
        409 explaining how to enable tracing, not a silent empty tree.
        """
        job = self.jobs.get(job_id)
        if job is None:
            return 404, {"error": f"unknown job_id {job_id!r}"}
        if job.trace_id is None:
            return 409, {
                "error": f"job {job_id} carries no trace id",
                "job_id": job_id,
            }
        tracer = current_tracer()
        if not tracer.enabled or tracer.path is None:
            return 409, {
                "error": (
                    "tracing is not active on this server; start it under "
                    "REPRO_TRACE=<path> (or trace_to) to make request "
                    "traces retrievable"
                ),
                "job_id": job_id,
                "trace_id": job.trace_id,
            }
        from repro.obs.report import load_trace, stitch_request_trace

        tracer.flush()
        stitched = stitch_request_trace(load_trace(tracer.path), job.trace_id)
        stitched["job_id"] = job.job_id
        stitched["status"] = job.status
        return 200, stitched


def _parse_json(body: bytes) -> dict:
    if not body:
        raise _HttpError(400, "empty request body; expected JSON")
    try:
        parsed = json.loads(body)
    except json.JSONDecodeError as exc:
        raise _HttpError(400, f"malformed JSON body: {exc}")
    if not isinstance(parsed, dict):
        raise _HttpError(400, "JSON body must be an object")
    return parsed


def _result_nbytes(result: dict) -> int:
    return len(json.dumps(result).encode("utf-8"))


# -- thread-hosted server (tests, bench, loadgen --spawn) -------------------


class ServerHandle:
    """A server running on a daemon thread's event loop.

    ``host``/``port`` are live immediately (the constructor waits for
    the listener). :meth:`stop` drains and joins; it is idempotent.
    """

    def __init__(self, server: SolveServer, thread: threading.Thread, loop):
        self.server = server
        self._thread = thread
        self._loop = loop

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def stop(self, timeout: float = 30.0) -> None:
        if self._thread.is_alive():
            try:
                self._loop.call_soon_threadsafe(self.server.request_stop)
            except RuntimeError:  # pragma: no cover - loop already gone
                pass
        self._thread.join(timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False


def serve_in_thread(config: ServerConfig | None = None) -> ServerHandle:
    """Boot a :class:`SolveServer` on a background thread and wait until
    it accepts connections. The caller owns the handle: ``stop()`` (or
    use it as a context manager) when done."""
    server = SolveServer(config)
    ready = threading.Event()
    loop_holder: dict = {}

    def _run():
        loop = asyncio.new_event_loop()
        loop_holder["loop"] = loop
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(server.run(ready=ready))
        except BaseException as exc:  # startup failures surface to the caller
            loop_holder["error"] = exc
        finally:
            ready.set()
            loop.close()

    thread = threading.Thread(target=_run, name="repro-serve", daemon=True)
    thread.start()
    if not ready.wait(timeout=30.0):
        raise RuntimeError("serve thread failed to start within 30s")
    if "error" in loop_holder:
        thread.join(5.0)
        raise RuntimeError(f"serve thread failed to start: {loop_holder['error']!r}")
    return ServerHandle(server, thread, loop_holder["loop"])
