"""Serving tier: an asyncio HTTP API over :func:`repro.shard.shard_and_solve`.

Turns the library's batch solve path into a long-lived service:

- :mod:`repro.serve.server` — stdlib asyncio HTTP/1.1 server (no web
  framework dependency) with submit-instance / solve / poll / health
  endpoints, an async job queue draining into a worker pool that shares
  one execution backend across requests, supervised-retry fault
  tolerance (a crashed solve retries with the PR 6 byte-identity
  guarantee), and content-hash instance/result caches behind byte-budget
  admission control.
- :mod:`repro.serve.client` — blocking :class:`ServeClient` for tests,
  examples, and scripts.
- :mod:`repro.serve.loadgen` — ``python -m repro.serve.loadgen``, the
  concurrent load generator reporting throughput, failure rate, and
  p50/p99 latency (the bench ``serving`` tier).

Run a server with ``python -m repro.serve``; see ``examples/serving.py``
for the embedded form (:func:`serve_in_thread`).
"""

from repro.serve.cache import (
    AdmissionController,
    AdmissionError,
    LruBytesCache,
    StoredInstance,
    estimate_request_bytes,
    payload_hash,
    result_key,
    store_points,
)
from repro.serve.client import ServeClient, ServeError
from repro.serve.jobs import Job, JobTable, SolveRunner, normalize_params
from repro.serve.server import ServerConfig, ServerHandle, SolveServer, serve_in_thread


def __getattr__(name):
    # Lazy so `python -m repro.serve.loadgen` doesn't import the module
    # twice (package import + runpy) and trip the sys.modules warning.
    if name == "run_loadgen":
        from repro.serve.loadgen import run_loadgen

        return run_loadgen
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "Job",
    "JobTable",
    "LruBytesCache",
    "ServeClient",
    "ServeError",
    "ServerConfig",
    "ServerHandle",
    "SolveRunner",
    "SolveServer",
    "StoredInstance",
    "estimate_request_bytes",
    "normalize_params",
    "payload_hash",
    "result_key",
    "run_loadgen",
    "serve_in_thread",
    "store_points",
]
