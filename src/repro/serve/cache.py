"""Content-addressed instance/result caching and admission control.

The serving tier stores instances and solved results under
**content hashes** so identical payloads dedupe for free: an instance's
id is a digest over exactly the array members
:func:`repro.metrics.io.save_instance` would write for it (name, dtype,
shape, raw bytes — the ``.npz`` payload, minus the zip container whose
entry timestamps would make byte-hashing the archive nondeterministic).
Two clients uploading the same points get the same ``instance_id``;
a repeated identical solve request is answered from the result cache
without touching the queue.

**Admission control** reuses the costing conventions the bench layer
already applies when it marks dense/CSR constructions infeasible
against ``--budget-gib`` (:mod:`repro.bench.sparse_bench`): a request's
resident footprint is estimated from the same byte formulas — raw point
block, per-shard coreset copies, and the merged kNN CSR with the ~5
edge-sized temporaries the solvers allocate — and requests whose
estimate exceeds the server's budget are rejected up front (HTTP 413)
instead of OOM-ing a worker mid-solve.

Both caches are LRU over a byte budget; eviction never touches entries
for jobs still in flight (the result cache only ever holds finished
payloads — in-flight dedup lives in the job table, not here).
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.errors import InvalidParameterError


def payload_hash(arrays: dict) -> str:
    """Deterministic digest of an npz payload (named arrays).

    Hashes each member's name, dtype, shape, and C-order bytes in
    sorted-name order — the content of the archive
    :func:`repro.metrics.io.save_instance` writes, independent of zip
    entry metadata (timestamps make hashing archive bytes unstable).
    """
    h = hashlib.sha256()
    for name in sorted(arrays):
        a = np.ascontiguousarray(arrays[name])
        h.update(name.encode("utf-8"))
        h.update(b"\x00")
        h.update(str(a.dtype).encode("ascii"))
        h.update(str(a.shape).encode("ascii"))
        h.update(a.tobytes())
    return h.hexdigest()[:32]


def result_key(instance_id: str, params: dict) -> str:
    """Cache key for one solve: instance content + canonical params.

    ``params`` must be JSON-serializable; key order is canonicalized so
    logically identical requests collide (the point of the cache).
    """
    blob = json.dumps(params, sort_keys=True, separators=(",", ":"))
    h = hashlib.sha256()
    h.update(instance_id.encode("ascii"))
    h.update(b"\x00")
    h.update(blob.encode("utf-8"))
    return h.hexdigest()[:32]


def estimate_request_bytes(
    n: int,
    dim: int,
    *,
    k: int,
    shards: int,
    coreset_size: int | None,
    neighbors: int,
) -> int:
    """Resident-footprint estimate for one served solve.

    The same costing the bench feasibility markers use: ``8`` bytes per
    float64, the merged kNN CSR charged at ``2·neighbors`` directed
    edges per node times ~5 edge-sized arrays (indptr/indices/data plus
    the segmented per-edge temporaries the solvers allocate), plus the
    raw point block twice (input + partition/coreset working copies).
    """
    per_shard = int(coreset_size) if coreset_size else max(16 * int(k), 128)
    merged_n = min(int(n), int(shards) * per_shard)
    csr_bytes = 2 * int(neighbors) * merged_n * 8 * 5
    point_bytes = int(n) * int(dim) * 8
    return 2 * point_bytes + csr_bytes


class AdmissionError(InvalidParameterError):
    """A request was refused by admission control (over budget)."""


@dataclass
class AdmissionController:
    """Byte-budget gate in front of the job queue.

    ``budget_bytes`` bounds the estimated resident footprint of any
    single request (instance + solve temporaries). One number, applied
    identically at instance upload and at solve submission, so a client
    learns about an over-budget workload at the cheapest possible
    moment.
    """

    budget_bytes: int = 256 * 2**20

    def admit_instance(self, n: int, dim: int) -> int:
        """Admit a raw point upload; returns its resident byte size."""
        nbytes = int(n) * int(dim) * 8
        if nbytes > self.budget_bytes:
            raise AdmissionError(
                f"instance of {n} x {dim} points needs {nbytes} bytes resident, "
                f"over the {self.budget_bytes}-byte admission budget"
            )
        return nbytes

    def admit_solve(self, n: int, dim: int, *, k, shards, coreset_size, neighbors) -> int:
        """Admit a solve request; returns the footprint estimate."""
        estimate = estimate_request_bytes(
            n, dim, k=k, shards=shards, coreset_size=coreset_size, neighbors=neighbors
        )
        if estimate > self.budget_bytes:
            raise AdmissionError(
                f"solve over {n} points (k={k}, shards={shards}, "
                f"neighbors={neighbors}) estimates {estimate} bytes resident, "
                f"over the {self.budget_bytes}-byte admission budget"
            )
        return estimate


@dataclass
class _Entry:
    value: object
    nbytes: int


class LruBytesCache:
    """Thread-safe LRU cache bounded by total byte weight.

    ``put`` evicts least-recently-used entries until the new total fits;
    a single entry larger than the budget is simply not cached (the
    caller already passed admission — caching is best-effort).
    """

    def __init__(self, max_bytes: int):
        self.max_bytes = int(max_bytes)
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: str):
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry.value

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def put(self, key: str, value, nbytes: int) -> None:
        nbytes = int(nbytes)
        if nbytes > self.max_bytes:
            return
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old.nbytes
            while self._bytes + nbytes > self.max_bytes and self._entries:
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= evicted.nbytes
                self.evictions += 1
            self._entries[key] = _Entry(value, nbytes)
            self._bytes += nbytes

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


@dataclass
class StoredInstance:
    """A submitted instance resident in the cache: the validated point
    block (and optional weights) plus its content id and byte size."""

    instance_id: str
    points: np.ndarray
    weights: np.ndarray | None
    nbytes: int
    meta: dict = field(default_factory=dict)


def store_points(points, weights=None) -> StoredInstance:
    """Validate and freeze a point payload into a :class:`StoredInstance`."""
    pts = np.ascontiguousarray(points, dtype=float)
    if pts.ndim != 2 or pts.shape[0] == 0:
        raise InvalidParameterError(
            f"points must be a non-empty (n, dim) array, got shape {pts.shape}"
        )
    if not np.all(np.isfinite(pts)):
        raise InvalidParameterError("points must be finite")
    w = None
    payload = {"points": pts}
    nbytes = pts.nbytes
    if weights is not None:
        w = np.ascontiguousarray(weights, dtype=float)
        if w.shape != (pts.shape[0],):
            raise InvalidParameterError(
                f"weights must have shape ({pts.shape[0]},), got {w.shape}"
            )
        if not np.all(np.isfinite(w)) or np.any(w <= 0):
            raise InvalidParameterError("weights must be finite and > 0")
        payload["weights"] = w
        nbytes += w.nbytes
    pts.setflags(write=False)
    if w is not None:
        w.setflags(write=False)
    return StoredInstance(
        instance_id=payload_hash(payload),
        points=pts,
        weights=w,
        nbytes=int(nbytes),
        meta={"n": int(pts.shape[0]), "dim": int(pts.shape[1])},
    )
