"""Job lifecycle and the worker-side solve runner.

A :class:`Job` is one accepted solve request moving through
``queued → running → done|failed``. The :class:`JobTable` owns every
job the server has seen, plus the **in-flight index**: a map from
result-cache key to the job currently computing it, so concurrent
identical requests coalesce onto one solve instead of racing the cache
(the second client polls the first client's job and both read the same
result).

:class:`SolveRunner` is the blocking worker-side entry point executed
on the server's executor threads. It runs
:func:`repro.shard.shard_and_solve` over the cached point block on the
server's shared backend under the PR 6 supervised-retry contract
(``on_shard_failure="retry"``), so a worker crash mid-request is
retried with the byte-identity guarantee — the response a client sees
after a crash is bit-for-bit the response of an unfailed run. Jobs are
seeded from their request parameters, never from server state, which is
what makes results cacheable and reruns identical.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import InvalidParameterError
from repro.faults.plan import FaultPlan
from repro.faults.supervisor import RetryPolicy
from repro.obs.log import current_log
from repro.pram.machine import PramMachine
from repro.serve.cache import StoredInstance, result_key
from repro.shard.solve import _SOLVERS, shard_and_solve

#: Request parameters a client may set, with server-side defaults filled
#: by :func:`normalize_params`. The normalized dict *is* the cacheable
#: identity of a solve (together with the instance content hash).
_PARAM_DEFAULTS = {
    "solver": "kmedian",
    "shards": 2,
    "coreset_size": None,
    "neighbors": 32,
    "epsilon": 0.5,
    "seed": 0,
    "fallback_slack": 1.0,
}


def normalize_params(body: dict, *, defaults: dict | None = None) -> dict:
    """Validate and canonicalize a solve request's parameters.

    Unknown keys are rejected (a typo'd parameter silently falling back
    to a default would cache the wrong identity); the result is a flat
    JSON-safe dict usable directly as the cache-key payload.
    """
    merged = dict(_PARAM_DEFAULTS)
    if defaults:
        merged.update(defaults)
    if "k" not in body:
        raise InvalidParameterError("solve request requires 'k'")
    allowed = set(merged) | {"k"}
    unknown = set(body) - allowed
    if unknown:
        raise InvalidParameterError(
            f"unknown solve parameter(s) {sorted(unknown)}; allowed: {sorted(allowed)}"
        )
    merged.update(body)
    try:
        params = {
            "k": int(merged["k"]),
            "solver": str(merged["solver"]),
            "shards": int(merged["shards"]),
            "coreset_size": (
                None if merged["coreset_size"] is None else int(merged["coreset_size"])
            ),
            "neighbors": int(merged["neighbors"]),
            "epsilon": float(merged["epsilon"]),
            "seed": int(merged["seed"]),
            "fallback_slack": float(merged["fallback_slack"]),
        }
    except (TypeError, ValueError) as exc:
        raise InvalidParameterError(f"malformed solve parameter: {exc}") from exc
    if params["solver"] not in _SOLVERS:
        raise InvalidParameterError(
            f"unknown solver {params['solver']!r}; expected one of {sorted(_SOLVERS)}"
        )
    if params["k"] < 1:
        raise InvalidParameterError(f"k must be >= 1, got {params['k']}")
    if params["shards"] < 1:
        raise InvalidParameterError(f"shards must be >= 1, got {params['shards']}")
    if params["neighbors"] < 1:
        raise InvalidParameterError(
            f"neighbors must be >= 1, got {params['neighbors']}"
        )
    return params


@dataclass
class Job:
    """One accepted solve request and its terminal payload."""

    job_id: str
    instance_id: str
    key: str
    params: dict
    status: str = "queued"
    result: dict | None = None
    error: str | None = None
    cached: bool = False
    coalesced: bool = False
    #: The request trace id the job was submitted under (None when the
    #: submit carried none) — the key that joins a polled job to its
    #: spans in a trace file (``GET /trace/<job_id>``).
    trace_id: str | None = None
    submitted_s: float = field(default_factory=time.perf_counter)
    started_s: float | None = None
    finished_s: float | None = None

    def to_json(self) -> dict:
        out = {
            "job_id": self.job_id,
            "instance_id": self.instance_id,
            "status": self.status,
            "params": self.params,
            "cached": self.cached,
            "coalesced": self.coalesced,
        }
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
        if self.result is not None:
            out["result"] = self.result
        if self.error is not None:
            out["error"] = self.error
        if self.finished_s is not None:
            out["wall_s"] = self.finished_s - self.submitted_s
        return out


class JobTable:
    """Thread-safe registry of every job plus the in-flight dedup index."""

    def __init__(self):
        self._jobs: dict[str, Job] = {}
        self._inflight: dict[str, str] = {}
        self._counter = 0
        self._lock = threading.Lock()

    def create(
        self, instance_id: str, params: dict, *, trace_id: str | None = None
    ) -> "tuple[Job, bool]":
        """Register a job for ``(instance, params)``.

        Returns ``(job, fresh)``: when an identical request is already
        in flight, the existing job rides again (``fresh=False``,
        ``coalesced=True`` on the caller's view, and the job keeps the
        *original* submitter's trace id — the trace belongs to the
        request that actually solves) — one solve serves every
        concurrent identical client.
        """
        key = result_key(instance_id, params)
        with self._lock:
            existing = self._inflight.get(key)
            if existing is not None:
                job = self._jobs[existing]
                if job.status in ("queued", "running"):
                    return job, False
            self._counter += 1
            job = Job(
                job_id=f"job-{self._counter:06d}",
                instance_id=instance_id,
                key=key,
                params=params,
                trace_id=trace_id,
            )
            self._jobs[job.job_id] = job
            self._inflight[key] = job.job_id
        log = current_log()
        if log.enabled:
            log.event(
                "job.created", job_id=job.job_id, instance_id=instance_id,
                k=params.get("k"), seed=params.get("seed"),
            )
        return job, True

    def add_completed(
        self, instance_id: str, params: dict, result: dict,
        *, trace_id: str | None = None,
    ) -> Job:
        """Register a pre-completed job (a result-cache hit) so polling
        works uniformly whether the answer was solved or served."""
        with self._lock:
            self._counter += 1
            job = Job(
                job_id=f"job-{self._counter:06d}",
                instance_id=instance_id,
                key=result_key(instance_id, params),
                params=params,
                status="done",
                result=result,
                cached=True,
                trace_id=trace_id,
            )
            job.finished_s = time.perf_counter()
            self._jobs[job.job_id] = job
            return job

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def finish(self, job: Job, *, result: dict | None = None, error: str | None = None):
        with self._lock:
            job.finished_s = time.perf_counter()
            if error is not None:
                job.status = "failed"
                job.error = error
            else:
                job.status = "done"
                job.result = result
            self._inflight.pop(job.key, None)
        log = current_log()
        if log.enabled:
            log.event(
                "job.finished",
                job_id=job.job_id,
                status=job.status,
                wall_s=job.finished_s - job.submitted_s,
                error=error,
                trace_id=job.trace_id,
            )

    def fail_queued(self, reason: str) -> int:
        """Terminal sweep at shutdown: jobs still queued when the server
        stops are failed loudly instead of left hanging for pollers."""
        failed = 0
        with self._lock:
            for job in self._jobs.values():
                if job.status == "queued":
                    job.status = "failed"
                    job.error = reason
                    job.finished_s = time.perf_counter()
                    self._inflight.pop(job.key, None)
                    failed += 1
        return failed

    def counts(self) -> dict:
        with self._lock:
            out = {"total": len(self._jobs)}
            for job in self._jobs.values():
                out[job.status] = out.get(job.status, 0) + 1
            return out


class SolveRunner:
    """Blocking per-job solver executed on the server's worker threads.

    Every job builds a fresh :class:`PramMachine` (own ledger, seeded
    from the request) over the server's *shared* backend — one worker
    pool serves every request, which is the whole point of the tier.
    ``shard_and_solve`` runs under the supervised-retry contract so a
    crashed solve retries with byte-identical recovery; the optional
    ``fault_plan`` is the same deterministic injection hook CI uses
    (``REPRO_FAULT_PLAN`` is consulted when it is ``None``).
    """

    def __init__(
        self,
        backend,
        *,
        retry_policy: RetryPolicy | None = None,
        fault_plan: FaultPlan | None = None,
    ):
        self.backend = backend
        self.retry_policy = (
            retry_policy
            if retry_policy is not None
            else RetryPolicy(max_attempts=3, base_delay=0.01, jitter=0.0)
        )
        self.fault_plan = fault_plan

    def solve(self, instance: StoredInstance, params: dict) -> dict:
        p = dict(params)
        n = instance.points.shape[0]
        shards = min(p["shards"], n)
        machine = PramMachine(backend=self.backend, seed=p["seed"])
        t0 = time.perf_counter()
        sol = shard_and_solve(
            instance.points,
            p["k"],
            shards=shards,
            coreset_size=p["coreset_size"],
            solver=p["solver"],
            neighbors=p["neighbors"],
            fallback_slack=p["fallback_slack"],
            epsilon=p["epsilon"],
            weights=instance.weights,
            seed=p["seed"],
            machine=machine,
            on_shard_failure="retry",
            retry_policy=self.retry_policy,
            fault_plan=self.fault_plan,
        )
        wall = time.perf_counter() - t0
        return {
            "centers": [int(c) for c in np.sort(sol.centers)],
            "cost": float(sol.cost),
            "true_cost": float(sol.true_cost),
            "objective": sol.objective,
            "shards": int(sol.shards),
            "movement": float(sol.movement),
            "degraded": bool(sol.degraded),
            "covered_weight_fraction": float(sol.covered_weight_fraction),
            "solve_s": wall,
        }
