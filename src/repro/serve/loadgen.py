"""Load generation against a running serving tier.

``python -m repro.serve.loadgen`` drives N concurrent clients at an
optional target request rate for a fixed request count or duration, and
reports the serving metrics the llm-d-style load harnesses emit:
**throughput (requests/s)**, **time-per-request**, **failure rate**,
and **p50/p90/p99 latency** measured client-side from submit to
terminal job state (so queue wait, solve time, and polling overhead are
all inside the number — it is the latency a user would see).

Each request is a fresh solve by default (the seed varies per request,
so every request exercises the full queue → worker → solver path);
``--identical`` repeats one identical request instead, measuring the
result cache. ``--spawn`` boots an in-process server first — the
self-contained smoke CI runs, and the reason a trace activated via
``REPRO_TRACE`` covers both sides of the wire in one file.

The report is importable too: :func:`run_loadgen` returns the dict, and
the bench layer wires it in as the ``serving`` tier.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import time

import numpy as np

from repro.errors import ReproError


async def _http(host, port, method, path, body=None, *, timeout=30.0):
    """One asyncio HTTP/1.1 request (Connection: close); returns
    ``(status, payload)``."""
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout=timeout
    )
    try:
        data = b"" if body is None else json.dumps(body).encode("utf-8")
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(data)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + data)
        await writer.drain()
        status_line = await asyncio.wait_for(reader.readline(), timeout=timeout)
        parts = status_line.decode("latin-1").split(None, 2)
        status = int(parts[1]) if len(parts) >= 2 else 500
        length = 0
        while True:
            raw = await asyncio.wait_for(reader.readline(), timeout=timeout)
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        payload = {}
        if length:
            raw = await asyncio.wait_for(reader.readexactly(length), timeout=timeout)
            payload = json.loads(raw)
        return status, payload
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass


async def _run_one(host, port, body, *, poll_interval, timeout):
    """Submit one solve and poll to a terminal state; returns
    ``(ok, latency_s, status)``."""
    t0 = time.perf_counter()
    status, payload = await _http(host, port, "POST", "/solve", body, timeout=timeout)
    if status not in (200, 202):
        return False, time.perf_counter() - t0, status
    if payload.get("status") == "done":
        return True, time.perf_counter() - t0, status
    job_id = payload["job_id"]
    deadline = t0 + timeout
    while True:
        await asyncio.sleep(poll_interval)
        status, payload = await _http(
            host, port, "GET", f"/jobs/{job_id}", timeout=timeout
        )
        if status != 200:
            return False, time.perf_counter() - t0, status
        if payload["status"] == "done":
            return True, time.perf_counter() - t0, 200
        if payload["status"] == "failed":
            return False, time.perf_counter() - t0, 500
        if time.perf_counter() >= deadline:
            return False, time.perf_counter() - t0, 504


async def _loadgen_async(
    host,
    port,
    *,
    clients,
    requests,
    duration,
    qps,
    n,
    dim,
    k,
    seed,
    identical,
    poll_interval,
    timeout,
    solve_params,
):
    rng = np.random.default_rng(seed)
    points = rng.normal(size=(n, dim))
    status, payload = await _http(
        host, port, "POST", "/instances", {"points": points.tolist()}, timeout=timeout
    )
    if status != 200:
        raise ReproError(f"instance submission failed: HTTP {status}: {payload}")
    instance_id = payload["instance_id"]

    records: list = []
    alloc = {"i": 0}
    start = time.perf_counter()
    deadline = None if duration is None else start + duration

    def _next_index():
        if deadline is None and alloc["i"] >= requests:
            return None
        if deadline is not None and time.perf_counter() >= deadline:
            return None
        i = alloc["i"]
        alloc["i"] += 1
        return i

    async def _client():
        while True:
            i = _next_index()
            if i is None:
                return
            if qps:
                slot = start + i / qps
                delay = slot - time.perf_counter()
                if delay > 0:
                    await asyncio.sleep(delay)
            body = {"instance_id": instance_id, "k": k, **(solve_params or {})}
            body["seed"] = int(seed) if identical else int(seed) + i
            ok, latency, http_status = await _run_one(
                host, port, body, poll_interval=poll_interval, timeout=timeout
            )
            records.append((ok, latency, http_status))

    await asyncio.gather(*[_client() for _ in range(clients)])
    wall = time.perf_counter() - start

    lat = np.asarray([r[1] for r in records]) if records else np.zeros(0)
    completed = sum(1 for r in records if r[0])
    failed = len(records) - completed
    report = {
        "clients": int(clients),
        "requests_sent": len(records),
        "completed": int(completed),
        "failed": int(failed),
        "failure_rate": (failed / len(records)) if records else 0.0,
        "wall_s": wall,
        "throughput_rps": (completed / wall) if wall > 0 else 0.0,
        "time_per_request_s": float(lat.mean()) if lat.size else 0.0,
        "latency_s": {
            "min": float(lat.min()) if lat.size else 0.0,
            "p50": float(np.percentile(lat, 50)) if lat.size else 0.0,
            "p90": float(np.percentile(lat, 90)) if lat.size else 0.0,
            "p99": float(np.percentile(lat, 99)) if lat.size else 0.0,
            "max": float(lat.max()) if lat.size else 0.0,
        },
        "instance_id": instance_id,
        "identical_requests": bool(identical),
        "n": int(n),
        "dim": int(dim),
        "k": int(k),
        "qps_target": qps,
    }
    # Scrape the server's own SLO verdict (when it evaluates one) so the
    # report carries both views of the run: client-observed latency and
    # server-side health. Raw _http because a degraded server answers
    # 503 and the verdict is exactly what we came for.
    status, payload = await _http(host, port, "GET", "/health", timeout=timeout)
    if status in (200, 503) and isinstance(payload, dict) and "slo" in payload:
        report["slo"] = payload["slo"]
    return report


def run_loadgen(
    host: str,
    port: int,
    *,
    clients: int = 4,
    requests: int = 50,
    duration: float | None = None,
    qps: float | None = None,
    n: int = 240,
    dim: int = 2,
    k: int = 4,
    seed: int = 0,
    identical: bool = False,
    poll_interval: float = 0.01,
    timeout: float = 60.0,
    solve_params: dict | None = None,
) -> dict:
    """Run the load generator; returns the report dict (module docstring).

    ``requests`` is the total across all clients; ``duration`` (seconds)
    replaces it with a deadline when given. ``solve_params`` forwards
    extra solver parameters (``shards``, ``coreset_size``, …) into every
    request body.
    """
    return asyncio.run(
        _loadgen_async(
            host,
            port,
            clients=clients,
            requests=requests,
            duration=duration,
            qps=qps,
            n=n,
            dim=dim,
            k=k,
            seed=seed,
            identical=identical,
            poll_interval=poll_interval,
            timeout=timeout,
            solve_params=solve_params,
        )
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8000)
    parser.add_argument("--clients", type=int, default=4, help="concurrent clients")
    parser.add_argument("--requests", type=int, default=50, help="total requests")
    parser.add_argument(
        "--duration", type=float, default=None,
        help="run for this many seconds instead of a fixed request count",
    )
    parser.add_argument("--qps", type=float, default=None, help="target request rate")
    parser.add_argument("--n", type=int, default=240, help="instance point count")
    parser.add_argument("--dim", type=int, default=2)
    parser.add_argument("--k", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--identical", action="store_true",
        help="repeat one identical request (measures the result cache)",
    )
    parser.add_argument("--shards", type=int, default=None)
    parser.add_argument("--coreset-size", type=int, default=None)
    parser.add_argument("--neighbors", type=int, default=None)
    parser.add_argument("--poll-interval", type=float, default=0.01)
    parser.add_argument("--timeout", type=float, default=60.0)
    parser.add_argument("--out", default=None, help="write the JSON report here")
    parser.add_argument(
        "--slo-p99", type=float, default=None,
        help="fail (exit 1) when client-observed p99 latency exceeds this "
        "many seconds",
    )
    parser.add_argument(
        "--max-failure-rate", type=float, default=None,
        help="fail (exit 1) when the failure rate exceeds this fraction",
    )
    parser.add_argument(
        "--spawn", action="store_true",
        help="boot an in-process server first (self-contained smoke)",
    )
    parser.add_argument(
        "--spawn-backend", default="process",
        help="execution backend for the spawned server",
    )
    parser.add_argument("--spawn-workers", type=int, default=2)
    parser.add_argument("--spawn-backend-workers", type=int, default=None)
    args = parser.parse_args(argv)

    solve_params = {}
    if args.shards is not None:
        solve_params["shards"] = args.shards
    if args.coreset_size is not None:
        solve_params["coreset_size"] = args.coreset_size
    if args.neighbors is not None:
        solve_params["neighbors"] = args.neighbors

    handle = None
    host, port = args.host, args.port
    try:
        if args.spawn:
            from repro.serve.server import ServerConfig, serve_in_thread

            handle = serve_in_thread(
                ServerConfig(
                    backend=args.spawn_backend,
                    workers=args.spawn_workers,
                    backend_workers=args.spawn_backend_workers,
                )
            )
            host, port = handle.host, handle.port
        report = run_loadgen(
            host,
            port,
            clients=args.clients,
            requests=args.requests,
            duration=args.duration,
            qps=args.qps,
            n=args.n,
            dim=args.dim,
            k=args.k,
            seed=args.seed,
            identical=args.identical,
            poll_interval=args.poll_interval,
            timeout=args.timeout,
            solve_params=solve_params or None,
        )
    finally:
        if handle is not None:
            handle.stop()

    from repro.obs.slo import grade_report

    breaches = grade_report(
        report, p99_latency_s=args.slo_p99, max_failure_rate=args.max_failure_rate
    )
    report["breaches"] = breaches
    text = json.dumps(report, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
    print(text)
    if breaches:
        for reason in breaches:
            print(f"SLO BREACH: {reason}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
