"""The PRAM machine: §2 basic matrix operations with cost accounting.

Algorithms in :mod:`repro.core` perform **all** asymptotically relevant
computation through a :class:`PramMachine`, so the ledger's totals *are*
the algorithm's work/depth/cache in the paper's model. The machine
executes primitives on a swappable backend (serial NumPy or GIL-free
thread-parallel NumPy) and returns ordinary ``numpy.ndarray`` results.

Cost conventions (paper §2):

==================  ==============  =============  ======================
primitive           work            depth          cache
==================  ==============  =============  ======================
``map``             ``m``           ``1``          ``m/B``
``reduce``/``scan`` ``m``           ``log m``      ``m/B``
``distribute``      ``m``           ``1``          ``m/B``
``transpose``       ``m``           ``1``          ``m/B``
``pack``            ``m``           ``log m``      ``m/B``
``sort_rows``       ``m log r``     ``log r``      ``(m/B) log_{M/B} m``
``random``          ``m``           ``1``          ``m/B``
==================  ==============  =============  ======================

(``m`` = elements touched, ``r`` = row length being sorted.)
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.pram.backends import Backend, SerialBackend
from repro.pram.ledger import CostLedger, CostSnapshot
from repro.pram.operators import AssociativeOp, get_operator
from repro.util.rng import ensure_rng


def _coerce_op(op: "str | AssociativeOp") -> AssociativeOp:
    return op if isinstance(op, AssociativeOp) else get_operator(op)


class PramMachine:
    """Executes basic matrix operations and charges the §2 cost model.

    Parameters
    ----------
    backend:
        Kernel executor; defaults to :class:`SerialBackend`.
    ledger:
        Cost accumulator; a fresh :class:`CostLedger` by default.
    seed:
        Seed/Generator for the machine's random primitives.
    """

    def __init__(self, backend: Backend | None = None, ledger: CostLedger | None = None, seed=None):
        self.backend = backend if backend is not None else SerialBackend()
        self.ledger = ledger if ledger is not None else CostLedger()
        self.rng = ensure_rng(seed)

    # -- elementwise -------------------------------------------------------

    def map(self, fn, *arrays: np.ndarray) -> np.ndarray:
        """Parallel loop: apply vectorized ``fn`` elementwise.

        ``fn`` must be a NumPy-vectorized callable; all array arguments
        participate in one fully parallel step (depth 1).
        """
        arrs = tuple(np.asarray(a) for a in arrays)
        out = self.backend.elementwise(fn, arrs)
        size = max((a.size for a in arrs), default=0)
        self.ledger.charge_basic("map", max(size, np.asarray(out).size), depth=1)
        return np.asarray(out)

    def where(self, cond, a, b) -> np.ndarray:
        """Elementwise select — a single parallel step."""
        return self.map(np.where, cond, a, b)

    # -- reductions & scans --------------------------------------------------

    def reduce(self, a: np.ndarray, op="add", axis=None) -> np.ndarray:
        """Summation across rows/columns/all with an associative operator."""
        a = np.asarray(a)
        oper = _coerce_op(op)
        out = self.backend.reduce(oper, a, axis)
        self.ledger.charge_basic(f"reduce[{oper.name}]", a.size)
        return np.asarray(out)

    def scan(self, a: np.ndarray, op="add", axis: int = -1) -> np.ndarray:
        """Inclusive prefix combine along ``axis``."""
        a = np.asarray(a)
        oper = _coerce_op(op)
        out = self.backend.scan(oper, a, axis)
        self.ledger.charge_basic(f"scan[{oper.name}]", a.size)
        return np.asarray(out)

    def exclusive_scan(self, a: np.ndarray, op="add", axis: int = -1) -> np.ndarray:
        """Exclusive prefix combine: element ``i`` gets the combine of ``a[:i]``."""
        a = np.asarray(a)
        oper = _coerce_op(op)
        inc = self.scan(a, oper, axis=axis)
        out = np.empty_like(inc)
        index = [slice(None)] * a.ndim
        index[axis] = slice(None, -1)
        src = tuple(index)
        index[axis] = slice(1, None)
        dst = tuple(index)
        out[dst] = inc[src]
        index[axis] = 0
        out[tuple(index)] = oper.identity
        self.ledger.charge_basic("shift", a.size, depth=1)
        return out

    def argmin(self, a: np.ndarray, axis=None) -> np.ndarray:
        """Index of the minimum (a min-reduction carrying indices)."""
        a = np.asarray(a)
        out = np.argmin(a, axis=axis)
        self.ledger.charge_basic("reduce[argmin]", a.size)
        return np.asarray(out)

    def argmax(self, a: np.ndarray, axis=None) -> np.ndarray:
        """Index of the maximum (a max-reduction carrying indices)."""
        a = np.asarray(a)
        out = np.argmax(a, axis=axis)
        self.ledger.charge_basic("reduce[argmax]", a.size)
        return np.asarray(out)

    # -- data movement -------------------------------------------------------

    def distribute(self, v: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
        """Broadcast ``v`` across rows or columns to ``shape`` (copying)."""
        v = np.asarray(v)
        try:
            out = np.broadcast_to(v, shape).copy()
        except ValueError as exc:
            raise InvalidParameterError(
                f"cannot distribute shape {v.shape} to {shape}: {exc}"
            ) from exc
        self.ledger.charge_basic("distribute", out.size, depth=1)
        return out

    def transpose(self, a: np.ndarray) -> np.ndarray:
        """Matrix transposition (materialized, per the cache model)."""
        a = np.asarray(a)
        out = np.ascontiguousarray(a.T)
        self.ledger.charge_basic("transpose", a.size, depth=1)
        return out

    def gather_rows(self, a: np.ndarray, order: np.ndarray) -> np.ndarray:
        """Per-row gather: ``out[r, c] = a[r, order[r, c]]``.

        The paper's §4 presorting pattern: reorder each facility's row
        once, then address it by rank in later rounds. One parallel
        read per element (EREW-safe because ``order`` rows are
        permutations).
        """
        a = np.asarray(a)
        order = np.asarray(order, dtype=np.intp)
        if a.shape[0] != order.shape[0]:
            raise InvalidParameterError(
                f"gather_rows row mismatch: values {a.shape} vs order {order.shape}"
            )
        out = np.take_along_axis(a, order, axis=1)
        self.ledger.charge_basic("gather", out.size, depth=1)
        return out

    def take_columns(self, a: np.ndarray, idx: np.ndarray) -> np.ndarray:
        """Column selection ``a[:, idx]`` — a distribution-style copy."""
        a = np.asarray(a)
        idx = np.asarray(idx, dtype=np.intp)
        out = a[:, idx]
        self.ledger.charge_basic("gather", max(out.size, 1), depth=1)
        return out

    def pack(self, values: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """Filter: keep ``values`` where ``mask`` (compaction via a scan)."""
        values = np.asarray(values)
        mask = np.asarray(mask, dtype=bool)
        if values.shape[: mask.ndim] != mask.shape:
            raise InvalidParameterError(
                f"pack mask shape {mask.shape} incompatible with values {values.shape}"
            )
        out = values[mask]
        self.ledger.charge_basic("pack", max(values.size, 1))
        return out

    # -- sorting ---------------------------------------------------------------

    def sort_rows(self, a: np.ndarray) -> np.ndarray:
        """Sort each row of a 2-D matrix ascending."""
        a = np.asarray(a)
        if a.ndim != 2:
            raise InvalidParameterError(f"sort_rows requires a 2-D matrix, got ndim={a.ndim}")
        out = self.backend.sort(a, axis=1)
        self.ledger.charge_sort("sort_rows", a.size, a.shape[1])
        return np.asarray(out)

    def argsort_rows(self, a: np.ndarray) -> np.ndarray:
        """Per-row ascending argsort of a 2-D matrix."""
        a = np.asarray(a)
        if a.ndim != 2:
            raise InvalidParameterError(f"argsort_rows requires a 2-D matrix, got ndim={a.ndim}")
        out = self.backend.argsort(a, axis=1)
        self.ledger.charge_sort("argsort_rows", a.size, a.shape[1])
        return np.asarray(out)

    def sort(self, a: np.ndarray) -> np.ndarray:
        """Sort a 1-D vector ascending."""
        a = np.asarray(a)
        if a.ndim != 1:
            raise InvalidParameterError(f"sort requires a vector, got ndim={a.ndim}")
        out = np.sort(a, kind="stable")
        self.ledger.charge_sort("sort", a.size, a.size)
        return out

    # -- randomness --------------------------------------------------------------

    def random_uniform(self, shape) -> np.ndarray:
        """Per-element uniform(0,1) draws — one parallel step."""
        out = self.rng.random(shape)
        self.ledger.charge_basic("random", out.size, depth=1)
        return out

    def random_priorities(self, n: int) -> np.ndarray:
        """Distinct random priorities for Luby select steps.

        The paper draws u.a.r. from ``{1..2n⁴}``; a random permutation
        gives the same distinct-with-certainty behavior.
        """
        out = self.rng.permutation(n)
        self.ledger.charge_basic("random", max(n, 1), depth=1)
        return out

    # -- bookkeeping ---------------------------------------------------------------

    def bump_round(self, label: str) -> int:
        """Count one round of the named phase (for E2 round benches)."""
        return self.ledger.bump_round(label)

    def snapshot(self) -> CostSnapshot:
        """Current ledger totals (subtract later to cost an interval)."""
        return self.ledger.snapshot()

    def close(self) -> None:
        """Release backend worker resources (thread pools)."""
        self.backend.close()
