"""The PRAM machine: §2 basic matrix operations with cost accounting.

Algorithms in :mod:`repro.core` perform **all** asymptotically relevant
computation through a :class:`PramMachine`, so the ledger's totals *are*
the algorithm's work/depth/cache in the paper's model. The machine
executes primitives on a swappable backend (serial NumPy or GIL-free
thread-parallel NumPy) and returns ordinary ``numpy.ndarray`` results.

Cost conventions (paper §2):

==================  ==============  =============  ======================
primitive           work            depth          cache
==================  ==============  =============  ======================
``map``             ``m``           ``1``          ``m/B``
``masked_axpy``     ``m``           ``1``          ``m/B``
``reduce``/``scan`` ``m``           ``log m``      ``m/B``
``count_votes``     ``m + r``       ``log m``      ``(m + r)/B``
``distribute``      ``m``           ``1``          ``m/B``
``transpose``       ``m``           ``1``          ``m/B``
``take_rows``       ``m``           ``1``          ``m/B``
``pack``            ``m``           ``log m``      ``m/B``
``pack_rows``       ``m``           ``log m``      ``m/B``
``sort_rows``       ``m log r``     ``log r``      ``(m/B) log_{M/B} m``
``random``          ``m``           ``1``          ``m/B``
==================  ==============  =============  ======================

(``m`` = elements touched, ``r`` = row length being sorted / the vote
range.) Charges are **backend-invariant**: they are computed from the
array sizes a primitive touches, never from how the backend executed
it, so serial, thread, and process runs of the same seeded algorithm
report identical work/depth/cache totals — only wall-clock moves.
``masked_axpy``, ``count_votes``, ``take_rows``, and
``pack_rows`` are the frontier-compaction primitives: they let each
round of the §4/§5 algorithms touch only the *remaining* instance —
``count_votes`` replaces an ``n_f × n_c`` vote matrix with a
bincount-style segmented count, ``take_rows``/``pack_rows`` carve out
the live-frontier submatrices, and ``masked_axpy`` fuses the
scale-add-clamp pattern of the §5 payment computation into one parallel
step. All are expressible as constant compositions of the paper's §2
basic operations, so the charged totals remain faithful to the model.
"""

from __future__ import annotations

import functools

import numpy as np

from repro.errors import InvalidParameterError
from repro.obs.tracer import current_tracer
from repro.pram.backends import Backend, resolve_backend_name, shared_backend
from repro.pram.kernels import KernelProvider, shared_kernel_provider
from repro.pram.ledger import CostLedger, CostSnapshot
from repro.pram.operators import AssociativeOp, get_operator
from repro.util.rng import ensure_rng

#: Primitives wrapped with trace spans when a machine is built under an
#: enabled tracer. Wrapping is per-instance and only happens when
#: tracing is on — a machine built with tracing off runs the methods
#: below exactly as written, with zero indirection added.
_TRACED_PRIMITIVES = (
    "map",
    "where",
    "masked_axpy",
    "reduce",
    "scan",
    "exclusive_scan",
    "argmin",
    "argmax",
    "distribute",
    "transpose",
    "gather_rows",
    "take_columns",
    "take_rows",
    "pack_rows",
    "count_votes",
    "segmented_reduce",
    "segmented_scan",
    "segmented_argmin",
    "segment_positions",
    "segment_spread",
    "scatter_min",
    "scatter_add",
    "argsort_segments",
    "take_submatrix",
    "pack",
    "sort_rows",
    "argsort_rows",
    "sort",
    "sorted_unique",
    "random_uniform",
    "random_priorities",
)


def _traced_primitive(tracer, ledger, name, bound):
    """Wrap one bound primitive with a span carrying ledger deltas.

    Each call emits a ``cat="pram"`` complete event whose args hold the
    work/depth the ledger charged during the call — the correlation
    between model cost and wall cost per op. Spans nest naturally
    (``where`` → ``map``, ``exclusive_scan`` → ``scan``) the way the
    calls do.
    """

    @functools.wraps(bound)
    def wrapper(*args, **kwargs):
        ts = tracer.now()
        work0, depth0 = ledger.work, ledger.depth
        try:
            return bound(*args, **kwargs)
        finally:
            dur = tracer.now() - ts
            tracer.complete(
                name,
                "pram",
                ts,
                dur,
                args={"work": ledger.work - work0, "depth": ledger.depth - depth0},
            )
            tracer.metrics.histogram(f"pram.{name}_us").observe(dur)

    return wrapper


def _instrument_machine(machine: "PramMachine") -> None:
    """Install per-instance trace wrappers over the machine's primitives."""
    for name in _TRACED_PRIMITIVES:
        setattr(
            machine,
            name,
            _traced_primitive(
                machine.tracer, machine.ledger, name, getattr(machine, name)
            ),
        )


def _coerce_op(op: "str | AssociativeOp") -> AssociativeOp:
    return op if isinstance(op, AssociativeOp) else get_operator(op)


def _check_gather_index(label: str, idx, extent: int) -> np.ndarray:
    """Validate gather indices are within ``[0, extent)`` (negative
    indices are rejected — frontier index sets are always canonical)."""
    idx = np.asarray(idx, dtype=np.intp)
    if idx.size and (idx.min() < 0 or idx.max() >= extent):
        raise InvalidParameterError(
            f"{label} index out of range [0, {extent}): "
            f"[{int(idx.min())}, {int(idx.max())}]"
        )
    return idx


class PramMachine:
    """Executes basic matrix operations and charges the §2 cost model.

    Parameters
    ----------
    backend:
        Kernel executor: a :class:`Backend` instance (the machine then
        owns it — :meth:`close` shuts it down), a backend name
        (``"serial"``/``"thread"``/``"process"``/``"auto"``, resolved
        to the process-wide :func:`~repro.pram.backends.shared_backend`
        for that configuration), or ``None`` for the environment
        default (``REPRO_BACKEND``, serial unless set). Shared backends
        are left open by :meth:`close` and released atexit.
    ledger:
        Cost accumulator; a fresh :class:`CostLedger` by default.
    seed:
        Seed/Generator for the machine's random primitives.
    kernels:
        Segmented scatter/scan kernel provider: a
        :class:`~repro.pram.kernels.KernelProvider` instance, a provider
        name (``"numpy"``/``"numba"``), or ``None`` for the environment
        default (``REPRO_KERNELS``, numpy unless set). Providers are
        byte-identical by contract — swapping one moves wall-clock only;
        ledger charges are computed here, never inside a provider.
    tracer:
        Observability sink (:class:`repro.obs.Tracer`), or ``None`` for
        the process default (``REPRO_TRACE`` env / :func:`~repro.obs.set_tracer`,
        disabled unless configured). When the tracer is enabled every
        primitive call emits a span carrying the work/depth it charged;
        when disabled the machine is byte-for-byte the uninstrumented
        code — no wrappers are installed at all. Tracing never touches
        data or randomness, so results are identical either way.
    """

    def __init__(
        self,
        backend: "Backend | str | None" = None,
        ledger: CostLedger | None = None,
        seed=None,
        kernels: "KernelProvider | str | None" = None,
        tracer=None,
    ):
        if backend is None or isinstance(backend, str):
            self.backend = shared_backend(backend)
            self._owns_backend = False
        else:
            self.backend = backend
            self._owns_backend = True
        self.kernels = shared_kernel_provider(kernels)
        self.ledger = ledger if ledger is not None else CostLedger()
        self.rng = ensure_rng(seed)
        self.tracer = tracer if tracer is not None else current_tracer()
        if self.tracer.enabled:
            _instrument_machine(self)

    # -- elementwise -------------------------------------------------------

    def map(self, fn, *arrays: np.ndarray) -> np.ndarray:
        """Parallel loop: apply vectorized ``fn`` elementwise.

        ``fn`` must be a NumPy-vectorized callable; all array arguments
        participate in one fully parallel step (depth 1).
        """
        arrs = tuple(np.asarray(a) for a in arrays)
        out = self.backend.elementwise(fn, arrs)
        size = max((a.size for a in arrs), default=0)
        self.ledger.charge_basic("map", max(size, np.asarray(out).size), depth=1)
        return np.asarray(out)

    def where(self, cond, a, b) -> np.ndarray:
        """Elementwise select — a single parallel step."""
        return self.map(np.where, cond, a, b)

    def masked_axpy(self, a, x, y, *, clamp_min=None, mask=None, fill=0.0) -> np.ndarray:
        """Fused ``a*x + y`` with optional lower clamp and mask-select.

        ``a`` is a scalar; ``x``, ``y``, and ``mask`` broadcast to a
        common shape. With ``clamp_min`` the result is
        ``max(clamp_min, a*x + y)``; with ``mask`` positions where the
        mask is false read ``fill``. One parallel step and one ledger
        charge — the workhorse of the §5 payment computation
        (``max(0, (1+ε)α − d)``) without intermediate matrices.
        """
        out = np.asarray(
            self.backend.fused_axpy(a, x, y, clamp_min=clamp_min, mask=mask, fill=fill)
        )
        self.ledger.charge_basic("masked_axpy", out.size, depth=1)
        return out

    # -- reductions & scans --------------------------------------------------

    def reduce(self, a: np.ndarray, op="add", axis=None) -> np.ndarray:
        """Summation across rows/columns/all with an associative operator."""
        a = np.asarray(a)
        oper = _coerce_op(op)
        out = self.backend.reduce(oper, a, axis)
        self.ledger.charge_basic(f"reduce[{oper.name}]", a.size)
        return np.asarray(out)

    def scan(self, a: np.ndarray, op="add", axis: int = -1) -> np.ndarray:
        """Inclusive prefix combine along ``axis``."""
        a = np.asarray(a)
        oper = _coerce_op(op)
        out = self.backend.scan(oper, a, axis)
        self.ledger.charge_basic(f"scan[{oper.name}]", a.size)
        return np.asarray(out)

    def exclusive_scan(self, a: np.ndarray, op="add", axis: int = -1) -> np.ndarray:
        """Exclusive prefix combine: element ``i`` gets the combine of ``a[:i]``."""
        a = np.asarray(a)
        oper = _coerce_op(op)
        inc = self.scan(a, oper, axis=axis)
        out = np.empty_like(inc)
        index = [slice(None)] * a.ndim
        index[axis] = slice(None, -1)
        src = tuple(index)
        index[axis] = slice(1, None)
        dst = tuple(index)
        out[dst] = inc[src]
        index[axis] = 0
        out[tuple(index)] = oper.identity
        self.ledger.charge_basic("shift", a.size, depth=1)
        return out

    def argmin(self, a: np.ndarray, axis=None) -> np.ndarray:
        """Index of the minimum (a min-reduction carrying indices)."""
        a = np.asarray(a)
        out = np.argmin(a, axis=axis)
        self.ledger.charge_basic("reduce[argmin]", a.size)
        return np.asarray(out)

    def argmax(self, a: np.ndarray, axis=None) -> np.ndarray:
        """Index of the maximum (a max-reduction carrying indices)."""
        a = np.asarray(a)
        out = np.argmax(a, axis=axis)
        self.ledger.charge_basic("reduce[argmax]", a.size)
        return np.asarray(out)

    # -- data movement -------------------------------------------------------

    def distribute(self, v: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
        """Broadcast ``v`` across rows or columns to ``shape`` (copying)."""
        v = np.asarray(v)
        try:
            out = np.broadcast_to(v, shape).copy()
        except ValueError as exc:
            raise InvalidParameterError(
                f"cannot distribute shape {v.shape} to {shape}: {exc}"
            ) from exc
        self.ledger.charge_basic("distribute", out.size, depth=1)
        return out

    def transpose(self, a: np.ndarray) -> np.ndarray:
        """Matrix transposition (materialized, per the cache model)."""
        a = np.asarray(a)
        out = np.ascontiguousarray(a.T)
        self.ledger.charge_basic("transpose", a.size, depth=1)
        return out

    def gather_rows(self, a: np.ndarray, order: np.ndarray) -> np.ndarray:
        """Per-row gather: ``out[r, c] = a[r, order[r, c]]``.

        The paper's §4 presorting pattern: reorder each facility's row
        once, then address it by rank in later rounds. One parallel
        read per element (EREW-safe because ``order`` rows are
        permutations).
        """
        a = np.asarray(a)
        order = np.asarray(order, dtype=np.intp)
        if a.shape[0] != order.shape[0]:
            raise InvalidParameterError(
                f"gather_rows row mismatch: values {a.shape} vs order {order.shape}"
            )
        out = np.take_along_axis(a, order, axis=1)
        self.ledger.charge_basic("gather", out.size, depth=1)
        return out

    def take_columns(self, a: np.ndarray, idx: np.ndarray) -> np.ndarray:
        """Column selection ``a[:, idx]`` — a distribution-style copy.

        Indices are validated like every other gather: a wrong frontier
        index set must fail loudly, not wrap around and silently
        corrupt the result.
        """
        a = np.asarray(a)
        if a.ndim < 2:
            raise InvalidParameterError(
                f"take_columns requires a matrix, got ndim={a.ndim}"
            )
        idx = _check_gather_index("take_columns", idx, a.shape[1])
        out = a[:, idx]
        self.ledger.charge_basic("gather", max(out.size, 1), depth=1)
        return out

    def take_rows(self, a: np.ndarray, idx: np.ndarray) -> np.ndarray:
        """Row selection ``a[idx]`` (element selection for vectors).

        The frontier-gather: pull the live rows of a matrix into a
        compact submatrix so later primitives touch only the frontier.
        One parallel read per output element.
        """
        a = np.asarray(a)
        idx = _check_gather_index("take_rows", idx, a.shape[0])
        out = a[idx]
        self.ledger.charge_basic("take_rows", max(out.size, 1), depth=1)
        return out

    def pack_rows(self, values: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """Per-row compaction keeping a **uniform** count per row.

        ``mask`` is boolean with the same shape as 2-D ``values`` and
        must keep the same number of entries in every row (the frontier
        invariant: removing a client set drops exactly one entry per
        facility row). Returns the kept entries, order preserved, as a
        dense ``(rows, k)`` matrix — a row-segmented pack (scan +
        scatter in the §2 model).
        """
        values = np.asarray(values)
        mask = np.asarray(mask, dtype=bool)
        if values.ndim != 2 or mask.shape != values.shape:
            raise InvalidParameterError(
                f"pack_rows needs matching 2-D shapes, got {values.shape} and {mask.shape}"
            )
        counts = mask.sum(axis=1)
        k = int(counts[0]) if counts.size else 0
        if counts.size and not np.all(counts == k):
            raise InvalidParameterError(
                "pack_rows requires a uniform per-row keep count, got "
                f"min={counts.min()}, max={counts.max()}"
            )
        out = values[mask].reshape(values.shape[0], k)
        self.ledger.charge_basic("pack_rows", max(values.size, 1))
        return out

    def count_votes(self, labels: np.ndarray, minlength: int, *, mask: np.ndarray | None = None) -> np.ndarray:
        """Segmented count ``out[i] = #{j : labels[j] == i (and mask[j])}``.

        The bincount-style primitive that replaces materializing an
        ``n_f × n_c`` vote matrix: counting how many clients chose each
        facility is a single segmented ``+``-reduction over ``labels``.
        """
        labels = np.asarray(labels, dtype=np.intp)
        if labels.ndim != 1:
            raise InvalidParameterError(f"count_votes labels must be 1-D, got ndim={labels.ndim}")
        minlength = int(minlength)
        if minlength < 0:
            raise InvalidParameterError(f"minlength must be >= 0, got {minlength}")
        if mask is not None:
            mask = np.asarray(mask, dtype=bool)
            if mask.shape != labels.shape:
                raise InvalidParameterError(
                    f"count_votes mask shape {mask.shape} != labels shape {labels.shape}"
                )
            labels = labels[mask]
        if labels.size and (labels.min() < 0 or labels.max() >= minlength):
            # Out-of-range labels would make the output shape depend on
            # the data (and differ across backends) — reject instead.
            raise InvalidParameterError(
                f"count_votes labels must lie in [0, {minlength}), got "
                f"[{int(labels.min())}, {int(labels.max())}]"
            )
        out = self.backend.count_votes(labels, minlength)
        self.ledger.charge_basic("count_votes", max(labels.size + minlength, 1))
        return np.asarray(out)

    # -- segmented (CSR) primitives ------------------------------------------

    def segmented_reduce(self, values: np.ndarray, indptr: np.ndarray, op="add") -> np.ndarray:
        """Per-segment summation with an associative operator.

        ``indptr`` (length ``n_segments + 1``) delimits contiguous
        segments of the flat ``values`` array — the CSR layout of a
        sparse row structure. Empty segments reduce to the operator
        identity. Charged ``O(nnz + n_segments)`` work and ``O(log n)``
        depth: in the §2 model this is a prefix-combine followed by a
        boundary gather, i.e. a constant number of basic operations.

        Uniform segment lengths take a rectangular fast path through
        the backend's 2-D row reduction, which is bit-identical to the
        dense kernels — the parity bridge between the sparse and dense
        execution paths on dense-representable instances.
        """
        values = np.asarray(values)
        indptr = np.asarray(indptr, dtype=np.intp)
        oper = _coerce_op(op)
        n_seg = indptr.size - 1
        lens = np.diff(indptr)
        k = int(lens[0]) if n_seg else 0
        if n_seg and k > 0 and bool(np.all(lens == k)):
            out = self.backend.reduce(oper, values.reshape(n_seg, k), axis=1)
        else:
            out = self.backend.segmented_reduce(oper, values, indptr)
        self.ledger.charge_basic(
            f"segmented_reduce[{oper.name}]", max(values.size + n_seg, 1)
        )
        return np.asarray(out)

    def segmented_scan(self, values: np.ndarray, indptr: np.ndarray, op="add") -> np.ndarray:
        """Within-segment inclusive prefix combine (flat CSR layout).

        Uniform segments run through the backend's 2-D row scan
        (bit-identical to the dense kernels). Ragged segments support
        the ``add`` operator via an exact left-to-right accumulation —
        position ``k`` of every live segment is advanced in one
        vectorized step, so the result is bit-identical to a sequential
        per-segment pass (no global-cumsum cancellation error) and
        identical on every backend. Total elementwise work is ``nnz``;
        the ledger charges the §2 segmented-scan construction as usual.
        """
        values = np.asarray(values)
        indptr = np.asarray(indptr, dtype=np.intp)
        oper = _coerce_op(op)
        n_seg = indptr.size - 1
        lens = np.diff(indptr)
        k = int(lens[0]) if n_seg else 0
        if n_seg and k > 0 and bool(np.all(lens == k)):
            out = self.backend.scan(oper, values.reshape(n_seg, k), axis=1).reshape(-1)
            self.ledger.charge_basic(f"segmented_scan[{oper.name}]", max(values.size, 1))
            return np.asarray(out)
        if oper.name != "add":
            raise InvalidParameterError(
                f"ragged segmented_scan supports only 'add', got {oper.name!r}"
            )
        if values.size == 0:
            self.ledger.charge_basic("segmented_scan[add]", 1)
            return values.copy()
        # Preserve the input dtype so uniform and ragged structures give
        # consistent results (bool accumulates through int, like the
        # dense scan kernel's add.accumulate would). The provider
        # accumulates left-to-right within each segment — bit-identical
        # to a sequential per-segment pass on every provider.
        prepared = values.astype(
            np.int_ if values.dtype.kind == "b" else values.dtype, copy=False
        )
        out = self.kernels.segmented_scan_add(prepared, indptr)
        self.ledger.charge_basic("segmented_scan[add]", max(values.size + n_seg, 1))
        return np.asarray(out)

    def segmented_argmin(self, values: np.ndarray, indptr: np.ndarray) -> np.ndarray:
        """Flat position of the first per-segment minimum (−1 if empty).

        A min-reduction carrying indices: segment minima, an equality
        map, and a position min — three basic operations, ``O(nnz)``.
        Executed by the kernel provider; charged here as the reference
        composition (two segmented min-reductions, a spread, two maps),
        so ledger totals are provider-invariant.
        """
        values = np.asarray(values)
        indptr = np.asarray(indptr, dtype=np.intp)
        n_seg = indptr.size - 1
        out = self.kernels.segmented_argmin(values, indptr)
        self.ledger.charge_basic("segmented_reduce[min]", max(values.size + n_seg, 1))
        self.ledger.charge_basic("segment_spread", max(values.size, 1), depth=1)
        if values.size:
            self.ledger.charge_basic("map", values.size, depth=1)
            self.ledger.charge_basic("map", values.size, depth=1)
        self.ledger.charge_basic("segmented_reduce[min]", max(values.size + n_seg, 1))
        return np.asarray(out)

    def segment_positions(
        self, indptr: np.ndarray, rows: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Frontier-restricted segment gather: flat positions of the
        selected ``rows``' segments, plus the gathered sub-``indptr``.

        Returns ``(pos, sub_indptr)`` with ``pos`` indexing the
        original flat arrays — the sparse counterpart of
        :meth:`take_rows`: carving the live rows of a CSR structure
        costs the frontier's nnz, not the full structure's.
        """
        indptr = np.asarray(indptr, dtype=np.intp)
        rows = _check_gather_index("segment_positions", rows, indptr.size - 1)
        starts = indptr[rows]
        lens = indptr[rows + 1] - starts
        sub_indptr = np.concatenate(([0], np.cumsum(lens))).astype(np.intp)
        total = int(sub_indptr[-1])
        pos = np.arange(total) + np.repeat(starts - sub_indptr[:-1], lens)
        self.ledger.charge_basic("segment_gather", max(total + rows.size, 1), depth=1)
        return pos, sub_indptr

    def segment_spread(self, v: np.ndarray, indptr: np.ndarray) -> np.ndarray:
        """Distribute one value per segment across that segment's
        entries (``np.repeat`` by segment length) — the segmented
        counterpart of :meth:`distribute`."""
        v = np.asarray(v)
        indptr = np.asarray(indptr, dtype=np.intp)
        if v.shape != (indptr.size - 1,):
            raise InvalidParameterError(
                f"segment_spread needs one value per segment: got {v.shape} "
                f"for {indptr.size - 1} segments"
            )
        out = np.repeat(v, np.diff(indptr))
        self.ledger.charge_basic("segment_spread", max(out.size, 1), depth=1)
        return out

    def scatter_min(self, values: np.ndarray, idx: np.ndarray, size: int) -> np.ndarray:
        """Scatter-combine ``out[i] = min over {values[j] : idx[j] == i}``
        (``+inf`` where no entry lands).

        The column-axis companion of :meth:`segmented_reduce` for a
        row-major edge list: a min-reduction keyed by target index.
        Exact (min is order-independent), so backend-invariant by
        construction.
        """
        values = np.asarray(values, dtype=float)
        idx = _check_gather_index("scatter_min", idx, int(size))
        if values.shape != idx.shape:
            raise InvalidParameterError(
                f"scatter_min values shape {values.shape} != idx shape {idx.shape}"
            )
        out = self.kernels.scatter_min(values, idx, int(size))
        self.ledger.charge_basic("scatter_min", max(values.size + int(size), 1))
        return np.asarray(out)

    def scatter_add(self, values: np.ndarray, idx: np.ndarray, size: int) -> np.ndarray:
        """Scatter-sum ``out[i] = Σ {values[j] : idx[j] == i}``.

        Accumulates in flat-array order (``np.add.at``), which is the
        same every call and on every backend; like every segmented sum
        it can reassociate relative to a dense row-sum by an ulp.
        """
        values = np.asarray(values, dtype=float)
        idx = _check_gather_index("scatter_add", idx, int(size))
        if values.shape != idx.shape:
            raise InvalidParameterError(
                f"scatter_add values shape {values.shape} != idx shape {idx.shape}"
            )
        out = self.kernels.scatter_add(values, idx, int(size))
        self.ledger.charge_basic("scatter_add", max(values.size + int(size), 1))
        return np.asarray(out)

    def argsort_segments(self, values: np.ndarray, indptr: np.ndarray) -> np.ndarray:
        """Stable ascending argsort within each segment, as flat
        positions into ``values`` (the one-time presort of a sparse
        distance structure).

        Uniform segments route through the backend's row argsort;
        ragged segments use a stable two-key sort (segment id, value).
        """
        values = np.asarray(values)
        indptr = np.asarray(indptr, dtype=np.intp)
        n_seg = indptr.size - 1
        lens = np.diff(indptr)
        k = int(lens[0]) if n_seg else 0
        if n_seg and k > 0 and bool(np.all(lens == k)):
            local = np.asarray(self.backend.argsort(values.reshape(n_seg, k), axis=1))
            out = (local + indptr[:-1][:, None]).reshape(-1)
            self.ledger.charge_sort("argsort_segments", values.size, k)
            return out.astype(np.intp)
        seg_ids = np.repeat(np.arange(n_seg), lens)
        out = np.lexsort((values, seg_ids)).astype(np.intp)
        self.ledger.charge_sort(
            "argsort_segments", max(values.size, 1), max(int(lens.max()) if lens.size else 1, 1)
        )
        return out

    def take_submatrix(self, a: np.ndarray, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Fused row+column gather ``a[rows][:, cols]``.

        One parallel read per *output* element — the frontier gather:
        carving a live ``|rows| × |cols|`` submatrix costs the frontier
        size, not a full-width intermediate.
        """
        a = np.asarray(a)
        rows = _check_gather_index("take_submatrix rows", rows, a.shape[0])
        cols = _check_gather_index("take_submatrix cols", cols, a.shape[1] if a.ndim > 1 else 0)
        out = a[np.ix_(rows, cols)]
        self.ledger.charge_basic("take_rows", max(out.size, 1), depth=1)
        return out

    def pack(self, values: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """Filter: keep ``values`` where ``mask`` (compaction via a scan)."""
        values = np.asarray(values)
        mask = np.asarray(mask, dtype=bool)
        if values.shape[: mask.ndim] != mask.shape:
            raise InvalidParameterError(
                f"pack mask shape {mask.shape} incompatible with values {values.shape}"
            )
        out = values[mask]
        self.ledger.charge_basic("pack", max(values.size, 1))
        return out

    # -- sorting ---------------------------------------------------------------

    def sort_rows(self, a: np.ndarray) -> np.ndarray:
        """Sort each row of a 2-D matrix ascending."""
        a = np.asarray(a)
        if a.ndim != 2:
            raise InvalidParameterError(f"sort_rows requires a 2-D matrix, got ndim={a.ndim}")
        out = self.backend.sort(a, axis=1)
        self.ledger.charge_sort("sort_rows", a.size, a.shape[1])
        return np.asarray(out)

    def argsort_rows(self, a: np.ndarray) -> np.ndarray:
        """Per-row ascending argsort of a 2-D matrix."""
        a = np.asarray(a)
        if a.ndim != 2:
            raise InvalidParameterError(f"argsort_rows requires a 2-D matrix, got ndim={a.ndim}")
        out = self.backend.argsort(a, axis=1)
        self.ledger.charge_sort("argsort_rows", a.size, a.shape[1])
        return np.asarray(out)

    def sort(self, a: np.ndarray) -> np.ndarray:
        """Sort a 1-D vector ascending."""
        a = np.asarray(a)
        if a.ndim != 1:
            raise InvalidParameterError(f"sort requires a vector, got ndim={a.ndim}")
        out = np.sort(a, kind="stable")
        self.ledger.charge_sort("sort", a.size, a.size)
        return out

    def sorted_unique(self, a: np.ndarray) -> np.ndarray:
        """Ascending distinct values of a 1-D vector.

        One sort followed by an adjacent-difference pack (a map + a
        scan-compaction in the §2 model) — the single-primitive
        replacement for the ``np.unique(machine.sort(v))`` pattern,
        which sorted twice at the wall clock while charging the ledger
        once. Charged: one sort of ``|v|`` plus one pack of ``|v|``.
        """
        a = np.asarray(a)
        if a.ndim != 1:
            raise InvalidParameterError(
                f"sorted_unique requires a vector, got ndim={a.ndim}"
            )
        out = np.sort(a, kind="stable")
        self.ledger.charge_sort("sorted_unique", a.size, a.size)
        if out.size:
            keep = np.empty(out.size, dtype=bool)
            keep[0] = True
            np.not_equal(out[1:], out[:-1], out=keep[1:])
            out = out[keep]
            self.ledger.charge_basic("pack", a.size)
        return out

    # -- randomness --------------------------------------------------------------

    def random_uniform(self, shape) -> np.ndarray:
        """Per-element uniform(0,1) draws — one parallel step."""
        out = self.rng.random(shape)
        self.ledger.charge_basic("random", out.size, depth=1)
        return out

    def random_priorities(self, n: int) -> np.ndarray:
        """Distinct random priorities for Luby select steps.

        The paper draws u.a.r. from ``{1..2n⁴}``; a random permutation
        gives the same distinct-with-certainty behavior.
        """
        out = self.rng.permutation(n)
        self.ledger.charge_basic("random", max(n, 1), depth=1)
        return out

    # -- bookkeeping ---------------------------------------------------------------

    def bump_round(self, label: str) -> int:
        """Count one round of the named phase (for E2 round benches)."""
        index = self.ledger.bump_round(label)
        if self.tracer.enabled:
            self.tracer.instant(
                label, "round", args={"index": index, "work": self.ledger.work}
            )
        return index

    def snapshot(self) -> CostSnapshot:
        """Current ledger totals (subtract later to cost an interval)."""
        return self.ledger.snapshot()

    def close(self) -> None:
        """Release backend worker resources (thread/process pools).

        Only backends this machine owns (instances passed to the
        constructor) are closed; shared environment-default backends
        stay open for other machines and are released atexit.
        """
        if self._owns_backend:
            self.backend.close()

    def __enter__(self) -> "PramMachine":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


def ensure_machine(
    machine: PramMachine | None = None,
    *,
    backend: "Backend | str | None" = None,
    seed=None,
    size: int | None = None,
    tracer=None,
) -> PramMachine:
    """Return ``machine``, or build one on the requested backend.

    The shared helper behind every algorithm entry point's
    ``machine=None, backend=None`` signature: an explicit machine wins
    (passing both is ambiguous and rejected, and likewise for
    ``tracer=`` — the machine already carries its tracer), otherwise a
    fresh machine is built on the named backend — ``"auto"`` resolved
    against ``size``, the instance's element count — or on the
    environment default when neither is given.
    """
    if machine is not None:
        if backend is not None:
            raise InvalidParameterError(
                "pass either machine= or backend=, not both (the machine "
                "already carries its backend)"
            )
        if tracer is not None:
            raise InvalidParameterError(
                "pass either machine= or tracer=, not both (the machine "
                "already carries its tracer)"
            )
        return machine
    if isinstance(backend, str):
        backend = resolve_backend_name(backend, size)
    return PramMachine(backend=backend, seed=seed, tracer=tracer)
