"""Pluggable kernel providers for the segmented scatter/scan primitives.

The hottest sparse-path primitives — :meth:`~repro.pram.machine
.PramMachine.scatter_min`, :meth:`~repro.pram.machine.PramMachine
.scatter_add`, :meth:`~repro.pram.machine.PramMachine.segmented_argmin`,
and the ragged branch of :meth:`~repro.pram.machine.PramMachine
.segmented_scan` — bottom out in index-chasing loops that NumPy can
only express through ``ufunc.at`` (notoriously slow: one Python-level
dispatch per *distinct call*, one cache-missing scalar update per
element) or a per-position Python loop. This module extracts those
inner kernels behind a tiny :class:`KernelProvider` interface so a
compiled implementation can be swapped in without touching the machine,
the ledger, or any solver:

* :class:`NumpyKernels` — the **reference** implementation, exactly the
  pre-extraction NumPy code. Every other provider is certified against
  it byte-for-byte by the provider-parity suites.
* :class:`NumbaKernels` — optional ``@njit`` loops, import-guarded:
  constructing it raises :class:`~repro.errors.InvalidParameterError`
  with a clear message when numba is not installed, and it simply does
  not appear in :func:`available_kernel_providers` then. The compiled
  loops process elements in the same flat order as the reference
  (``np.minimum.at`` / ``np.add.at`` / the left-to-right per-segment
  accumulation), so results are **byte-identical**, not merely close —
  the invariant the parity suites pin.

Selection mirrors the backend registry: an explicit provider object or
name wins, otherwise :func:`shared_kernel_provider` consults the
``REPRO_KERNELS`` environment variable (``"numpy"`` unless set). Ledger
charges are computed in the machine from array sizes, never inside a
provider, so swapping providers moves wall-clock only — work/depth/cache
totals are provider-invariant by construction.
"""

from __future__ import annotations

import importlib.util
import os

import numpy as np

from repro.errors import InvalidParameterError

#: Environment variable consulted by :func:`shared_kernel_provider`.
KERNELS_ENV = "REPRO_KERNELS"


class KernelProvider:
    """Interface for the segmented scatter/scan inner kernels.

    All methods receive validated, canonical inputs (the machine owns
    validation and ledger charging): ``values`` is a 1-D float/any
    array, ``idx`` a 1-D ``intp`` array of in-range targets, ``indptr``
    a 1-D ``intp`` CSR segment-boundary array. Implementations must be
    byte-identical to :class:`NumpyKernels` — combine elements in flat
    array order (scatter) or left-to-right within each segment (scan).
    """

    name = "abstract"

    def scatter_min(self, values: np.ndarray, idx: np.ndarray, size: int) -> np.ndarray:
        """``out[i] = min{values[j] : idx[j] == i}`` (``+inf`` if none)."""
        raise NotImplementedError

    def scatter_add(self, values: np.ndarray, idx: np.ndarray, size: int) -> np.ndarray:
        """``out[i] = Σ{values[j] : idx[j] == i}``, accumulated in flat order."""
        raise NotImplementedError

    def segmented_argmin(self, values: np.ndarray, indptr: np.ndarray) -> np.ndarray:
        """Flat position of the *first* per-segment minimum (−1 if empty)."""
        raise NotImplementedError

    def segmented_scan_add(self, values: np.ndarray, indptr: np.ndarray) -> np.ndarray:
        """Ragged within-segment inclusive ``+``-scan, left-to-right.

        ``values`` arrives with its output dtype already fixed by the
        machine (bools promoted to int); the provider accumulates
        sequentially within each segment — the exact association a
        per-segment loop would produce.
        """
        raise NotImplementedError


class NumpyKernels(KernelProvider):
    """Reference NumPy implementation (the pre-extraction code paths)."""

    name = "numpy"

    def scatter_min(self, values, idx, size):
        out = np.full(int(size), np.inf)
        np.minimum.at(out, idx, values)
        return out

    def scatter_add(self, values, idx, size):
        out = np.zeros(int(size))
        np.add.at(out, idx, values)
        return out

    def segmented_argmin(self, values, indptr):
        n_seg = indptr.size - 1
        lens = np.diff(indptr)
        # Per-segment min, spread back over entries (identity-append
        # keeps empty segments well-defined, as in the backend kernel).
        gathered = np.append(values, np.inf)
        if values.size == 0:
            seg_min = np.full(n_seg, np.inf)
        else:
            seg_min = np.minimum.reduceat(gathered, indptr[:-1])
            seg_min[lens == 0] = np.inf
        hit = values == np.repeat(seg_min, lens)
        pos = np.where(hit, np.arange(values.size, dtype=float), np.inf)
        gathered_pos = np.append(pos, np.inf)
        if values.size == 0:
            first = np.full(n_seg, np.inf)
        else:
            first = np.minimum.reduceat(gathered_pos, indptr[:-1])
            first[lens == 0] = np.inf
        return np.where(np.isfinite(first), first, -1.0).astype(np.intp)

    def segmented_scan_add(self, values, indptr):
        out = values.copy()
        if out.size == 0:
            return out
        lens = np.diff(indptr)
        # Longest-first segment order makes "segments still live at
        # position k" a shrinking prefix, so each position advances with
        # one gather-add over exactly those segments: Σ_k |live_k| = nnz.
        order = np.argsort(-lens, kind="stable")
        sorted_lens = lens[order]
        sorted_starts = indptr[:-1][order]
        neg_lens = -sorted_lens
        for pos in range(1, int(sorted_lens[0]) if sorted_lens.size else 0):
            live = int(np.searchsorted(neg_lens, -pos, side="left"))  # len > pos
            idx = sorted_starts[:live] + pos
            out[idx] += out[idx - 1]
        return out


def _build_numba_kernels():
    """Compile the numba loops (deferred so import stays cheap and the
    module imports fine without numba installed)."""
    import numba

    @numba.njit(cache=True)
    def _scatter_min(values, idx, size):
        out = np.full(size, np.inf)
        for j in range(values.shape[0]):
            v = values[j]
            i = idx[j]
            if v < out[i]:
                out[i] = v
        return out

    @numba.njit(cache=True)
    def _scatter_add(values, idx, size):
        out = np.zeros(size)
        for j in range(values.shape[0]):
            out[idx[j]] += values[j]
        return out

    @numba.njit(cache=True)
    def _segmented_argmin(values, indptr):
        n_seg = indptr.shape[0] - 1
        out = np.empty(n_seg, dtype=np.intp)
        for s in range(n_seg):
            lo, hi = indptr[s], indptr[s + 1]
            if lo == hi:
                out[s] = -1
                continue
            best = lo
            for j in range(lo + 1, hi):
                if values[j] < values[best]:
                    best = j
            out[s] = best
        return out

    @numba.njit(cache=True)
    def _segmented_scan_add(values, indptr):
        out = values.copy()
        for s in range(indptr.shape[0] - 1):
            for j in range(indptr[s] + 1, indptr[s + 1]):
                out[j] += out[j - 1]
        return out

    return _scatter_min, _scatter_add, _segmented_argmin, _segmented_scan_add


class NumbaKernels(KernelProvider):
    """Compiled (``@njit``) kernels — optional, byte-identical.

    Element-processing order matches the reference exactly: scatter
    combines run in flat array order (what ``ufunc.at`` does), the
    ragged scan accumulates left-to-right per segment (what the
    reference's position-wise gather-add computes), and argmin keeps
    the first minimum under exact float comparison — so seeded solver
    outputs are byte-identical across providers, which the parity
    suites assert rather than assume.
    """

    name = "numba"

    def __init__(self):
        if not numba_available():
            raise InvalidParameterError(
                "kernel provider 'numba' requires the numba package, which "
                "is not installed; pip install numba or use REPRO_KERNELS=numpy"
            )
        (
            self._scatter_min,
            self._scatter_add,
            self._segmented_argmin,
            self._segmented_scan_add,
        ) = _build_numba_kernels()

    def scatter_min(self, values, idx, size):
        return self._scatter_min(values, np.asarray(idx, dtype=np.intp), int(size))

    def scatter_add(self, values, idx, size):
        return self._scatter_add(values, np.asarray(idx, dtype=np.intp), int(size))

    def segmented_argmin(self, values, indptr):
        return self._segmented_argmin(
            np.ascontiguousarray(values), np.asarray(indptr, dtype=np.intp)
        )

    def segmented_scan_add(self, values, indptr):
        return self._segmented_scan_add(
            np.ascontiguousarray(values), np.asarray(indptr, dtype=np.intp)
        )


def numba_available() -> bool:
    """Whether the optional numba provider can be constructed here."""
    return importlib.util.find_spec("numba") is not None


_PROVIDER_REGISTRY: dict = {
    "numpy": NumpyKernels,
    "numba": NumbaKernels,
}


def register_kernel_provider(name: str, factory) -> None:
    """Register a provider factory ``() -> KernelProvider`` under ``name``.

    Extension hook mirroring :func:`repro.pram.backends.register_backend`
    (e.g. a cython or GPU provider); registered names become valid
    everywhere a provider name is accepted, including ``REPRO_KERNELS``.
    """
    if not name:
        raise InvalidParameterError(f"invalid kernel provider name {name!r}")
    _PROVIDER_REGISTRY[str(name)] = factory


def available_kernel_providers() -> list:
    """Sorted provider names constructible *on this host* (numba is
    listed only when importable)."""
    names = []
    for name in _PROVIDER_REGISTRY:
        if name == "numba" and not numba_available():
            continue
        names.append(name)
    return sorted(names)


def make_kernel_provider(spec: "str | KernelProvider | None" = None) -> KernelProvider:
    """Construct a provider from a name (instances pass through).

    ``None`` reads ``REPRO_KERNELS`` (default ``"numpy"``) — the hook
    the optional-numba CI leg uses to run the whole suite on compiled
    kernels.
    """
    if isinstance(spec, KernelProvider):
        return spec
    name = spec if spec is not None else os.environ.get(KERNELS_ENV, "numpy").strip()
    if name not in _PROVIDER_REGISTRY:
        raise InvalidParameterError(
            f"unknown kernel provider {name!r}; expected one of "
            f"{sorted(_PROVIDER_REGISTRY)}"
        )
    return _PROVIDER_REGISTRY[name]()


_SHARED_PROVIDERS: dict = {}


def shared_kernel_provider(spec: "str | KernelProvider | None" = None) -> KernelProvider:
    """Process-wide cached provider for machines built without one.

    Providers are stateless (compiled function handles only), so one
    instance per name is shared by every machine — numba's JIT warmup
    then happens once per process, not once per machine.
    """
    if isinstance(spec, KernelProvider):
        return spec
    name = spec if spec is not None else os.environ.get(KERNELS_ENV, "numpy").strip()
    provider = _SHARED_PROVIDERS.get(name)
    if provider is None:
        provider = make_kernel_provider(name)
        _SHARED_PROVIDERS[name] = provider
    return provider
