"""Cost ledger: accumulates work, depth, and cache charges.

The ledger is the measurement instrument behind every work/depth claim
in EXPERIMENTS.md. Primitives report ``(work, depth, cache)`` charges;
the ledger accumulates them under sequential composition (depth adds —
the paper's algorithms issue primitives one after another, each itself
fully parallel) and tracks per-primitive call counts plus named round
counters so benchmarks can report "rounds executed" directly.
"""

from __future__ import annotations

import math
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import NamedTuple


class RoundMark(NamedTuple):
    """One entry of :attr:`CostLedger.round_log`.

    A NamedTuple so historical consumers that unpack positionally —
    ``(label, index, work, wall)`` — keep working unchanged, while new
    code reads fields by name. ``work`` is cumulative ledger work at
    the bump; ``wall`` is ``time.perf_counter()`` at the bump.
    """

    label: str
    index: int
    work: float
    wall: float

    @classmethod
    def coerce(cls, entry) -> "RoundMark":
        """Accept a RoundMark or a legacy bare 4-tuple."""
        return entry if isinstance(entry, cls) else cls(*entry)


@dataclass(frozen=True)
class CostSnapshot:
    """Immutable view of ledger totals, subtractable for interval costs."""

    work: float
    depth: float
    cache: float
    calls: int

    def __sub__(self, other: "CostSnapshot") -> "CostSnapshot":
        return CostSnapshot(
            work=self.work - other.work,
            depth=self.depth - other.depth,
            cache=self.cache - other.cache,
            calls=self.calls - other.calls,
        )


@dataclass
class CostLedger:
    """Accumulator for the §2 cost model.

    Parameters
    ----------
    cache_size:
        Model cache capacity ``M`` in elements (tall cache ``M > B²``).
    block_size:
        Model cache block size ``B`` in elements.
    """

    cache_size: float = float(2**20)
    block_size: float = 64.0
    work: float = 0.0
    depth: float = 0.0
    cache: float = 0.0
    calls_by_op: Counter = field(default_factory=Counter)
    work_by_op: Counter = field(default_factory=Counter)
    rounds: Counter = field(default_factory=Counter)
    round_log: list = field(default_factory=list)

    def __post_init__(self):
        if self.block_size <= 1:
            raise ValueError(f"block_size must exceed 1, got {self.block_size}")
        if self.cache_size < self.block_size**2:
            raise ValueError(
                "tall-cache assumption M > B^2 violated: "
                f"M={self.cache_size}, B={self.block_size}"
            )

    # -- charging ---------------------------------------------------------

    def charge(self, op: str, *, work: float, depth: float, cache: float) -> None:
        """Record one primitive invocation."""
        self.work += work
        self.depth += depth
        self.cache += cache
        self.calls_by_op[op] += 1
        self.work_by_op[op] += work

    def charge_basic(self, op: str, size: int, *, depth: float | None = None) -> None:
        """Charge a basic matrix operation on ``size`` elements.

        Work ``size``, depth ``⌈log₂ size⌉`` (callers may override for
        O(1)-depth elementwise maps), cache ``size/B``.
        """
        if size <= 0:
            return
        d = math.ceil(math.log2(size)) + 1 if depth is None else depth
        self.charge(op, work=float(size), depth=float(d), cache=size / self.block_size)

    def charge_parallel(self, op: str, costs) -> "CostSnapshot":
        """Fold independently-accrued cost intervals in under *parallel*
        composition: work and cache add (every shard's operations
        happen), depth is the max (the shards run side by side).

        ``costs`` is an iterable of :class:`CostSnapshot` intervals —
        typically ``ledger.since(start)`` from per-shard machines. The
        combined snapshot is charged as a single ``op`` invocation and
        returned, so callers can assert the aggregation seam charges
        exactly the sum of the parts (the shard ledger-honesty
        regression).
        """
        costs = list(costs)
        work = float(sum(c.work for c in costs))
        depth = float(max((c.depth for c in costs), default=0.0))
        cache = float(sum(c.cache for c in costs))
        combined = CostSnapshot(work=work, depth=depth, cache=cache, calls=1)
        self.charge(op, work=work, depth=depth, cache=cache)
        return combined

    def charge_sort(self, op: str, total: int, key_length: int) -> None:
        """Charge sorting ``total`` elements in sequences of ``key_length``.

        EREW: ``O(m log m)`` work, ``O(log m)`` depth (rows sorted in
        parallel, so depth depends on the row length); cache-oblivious:
        ``O((m/B) log_{M/B} m)``.
        """
        if total <= 0 or key_length <= 1:
            self.charge_basic(op, max(total, 1))
            return
        logk = math.log2(key_length)
        log_mb = max(1.0, math.log(total) / math.log(self.cache_size / self.block_size))
        self.charge(
            op,
            work=total * logk,
            depth=logk,
            cache=(total / self.block_size) * log_mb,
        )

    # -- rounds & snapshots -------------------------------------------------

    def bump_round(self, label: str) -> int:
        """Increment and return the named round counter.

        Each bump appends a :class:`RoundMark` (positionally compatible
        with the historical ``(label, index, work_so_far, wall_time)``
        tuple) to :attr:`round_log`, so benches can difference
        consecutive entries into per-round ledger work and wall-clock —
        the perf-trajectory instrument behind ``repro.bench.regressions``.
        """
        self.rounds[label] += 1
        self.round_log.append(
            RoundMark(label, self.rounds[label], self.work, time.perf_counter())
        )
        return self.rounds[label]

    @property
    def total_calls(self) -> int:
        """Total primitive invocations recorded so far."""
        return sum(self.calls_by_op.values())

    def snapshot(self) -> CostSnapshot:
        """Immutable copy of the current totals."""
        return CostSnapshot(self.work, self.depth, self.cache, self.total_calls)

    def since(self, start: CostSnapshot) -> CostSnapshot:
        """Costs accrued since ``start`` was taken."""
        return self.snapshot() - start

    def reset(self) -> None:
        """Zero all accumulators (cache/block parameters are preserved)."""
        self.work = self.depth = self.cache = 0.0
        self.calls_by_op.clear()
        self.work_by_op.clear()
        self.rounds.clear()
        self.round_log.clear()
