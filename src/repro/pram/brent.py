"""Brent's-theorem projections from ledger totals.

A computation with work ``W`` and depth ``D`` runs on ``p`` processors
in time ``T_p = W/p + D`` (Brent). The available *parallelism* is
``W/D`` — the asymptote of the speedup curve. These are the quantities
the paper's RNC claims are about, and benches E3 reports them.
"""

from __future__ import annotations

from repro.errors import InvalidParameterError
from repro.pram.ledger import CostSnapshot


def brent_time(costs: CostSnapshot, p: int) -> float:
    """Simulated running time on ``p`` processors: ``W/p + D``."""
    if p < 1:
        raise InvalidParameterError(f"processor count must be >= 1, got {p}")
    return costs.work / p + costs.depth


def parallelism(costs: CostSnapshot) -> float:
    """Average available parallelism ``W/D`` (infinite-processor speedup)."""
    if costs.depth <= 0:
        return float("inf") if costs.work > 0 else 1.0
    return costs.work / costs.depth


def speedup_curve(costs: CostSnapshot, processors: list[int]) -> list[tuple[int, float]]:
    """Speedup ``T_1 / T_p`` for each processor count in ``processors``."""
    t1 = brent_time(costs, 1)
    return [(p, t1 / brent_time(costs, p)) for p in processors]
