"""Execution backends for the PRAM primitives.

Two backends implement the same tiny kernel interface:

* :class:`SerialBackend` — plain NumPy. The default; model costs are
  charged identically regardless of backend.
* :class:`ThreadBackend` — row-blocked ``ThreadPoolExecutor``. NumPy
  ufuncs release the GIL while crunching, so threads deliver genuine
  wall-clock parallelism on large arrays (this is the substitution for
  physical PRAM processors noted in DESIGN.md: the GIL does not
  serialize NumPy kernels). Small arrays fall through to serial
  execution because thread handoff would dominate.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.errors import InvalidParameterError
from repro.pram.operators import AssociativeOp


class Backend:
    """Kernel interface shared by all backends."""

    name = "abstract"

    def elementwise(self, fn, arrays: tuple[np.ndarray, ...]) -> np.ndarray:
        """Apply vectorized ``fn`` to ``arrays`` (already broadcast)."""
        raise NotImplementedError

    def reduce(self, op: AssociativeOp, a: np.ndarray, axis) -> np.ndarray:
        raise NotImplementedError

    def scan(self, op: AssociativeOp, a: np.ndarray, axis: int) -> np.ndarray:
        raise NotImplementedError

    def sort(self, a: np.ndarray, axis: int) -> np.ndarray:
        raise NotImplementedError

    def argsort(self, a: np.ndarray, axis: int) -> np.ndarray:
        raise NotImplementedError

    def close(self) -> None:
        """Release any worker resources (no-op for serial)."""


class SerialBackend(Backend):
    """Direct NumPy execution on the calling thread."""

    name = "serial"

    def elementwise(self, fn, arrays):
        return fn(*arrays)

    def reduce(self, op, a, axis):
        return op.reduce(a, axis=axis)

    def scan(self, op, a, axis):
        return op.scan(a, axis=axis)

    def sort(self, a, axis):
        return np.sort(a, axis=axis, kind="stable")

    def argsort(self, a, axis):
        return np.argsort(a, axis=axis, kind="stable")


class ThreadBackend(Backend):
    """Row-blocked thread-parallel execution.

    Parameters
    ----------
    num_workers:
        Worker thread count; defaults to ``os.cpu_count()``.
    grain:
        Minimum elements per task; arrays smaller than
        ``grain * num_workers`` run serially to avoid dispatch overhead.
    """

    name = "thread"

    def __init__(self, num_workers: int | None = None, *, grain: int = 1 << 14):
        workers = num_workers if num_workers is not None else (os.cpu_count() or 1)
        if workers < 1:
            raise InvalidParameterError(f"num_workers must be >= 1, got {num_workers}")
        self.num_workers = int(workers)
        self.grain = int(grain)
        self._pool = ThreadPoolExecutor(max_workers=self.num_workers) if self.num_workers > 1 else None
        self._serial = SerialBackend()

    # -- helpers ----------------------------------------------------------

    def _too_small(self, a: np.ndarray) -> bool:
        return (
            self._pool is None
            or a.ndim == 0
            or a.shape[0] < 2
            or a.size < self.grain * self.num_workers
        )

    def _row_chunks(self, n_rows: int):
        """Split ``range(n_rows)`` into at most ``num_workers`` slices."""
        per = -(-n_rows // self.num_workers)
        return [slice(s, min(s + per, n_rows)) for s in range(0, n_rows, per)]

    def _parallel_over_rows(self, a: np.ndarray, task):
        chunks = self._row_chunks(a.shape[0])
        parts = list(self._pool.map(task, chunks))
        return parts, chunks

    # -- kernel interface ---------------------------------------------------

    def elementwise(self, fn, arrays):
        lead = max(arrays, key=lambda x: np.asarray(x).size)
        lead = np.asarray(lead)
        if self._too_small(lead) or any(
            np.asarray(x).shape != lead.shape for x in arrays
        ):
            return self._serial.elementwise(fn, arrays)
        parts, _ = self._parallel_over_rows(
            lead, lambda sl: fn(*(np.asarray(x)[sl] for x in arrays))
        )
        return np.concatenate(parts, axis=0)

    def reduce(self, op, a, axis):
        if self._too_small(a):
            return self._serial.reduce(op, a, axis)
        if axis in (1, -1) and a.ndim == 2:
            # Independent row reductions: perfectly row-parallel.
            parts, _ = self._parallel_over_rows(a, lambda sl: op.reduce(a[sl], axis=1))
            return np.concatenate(parts, axis=0)
        if axis is None:
            parts, _ = self._parallel_over_rows(a, lambda sl: op.reduce(a[sl], axis=None))
            return op.reduce(np.asarray(parts), axis=None)
        if axis == 0 and a.ndim == 2:
            # Tree-combine partial column reductions from row blocks.
            parts, _ = self._parallel_over_rows(a, lambda sl: op.reduce(a[sl], axis=0))
            return op.reduce(np.stack(parts, axis=0), axis=0)
        return self._serial.reduce(op, a, axis)

    def scan(self, op, a, axis):
        if self._too_small(a) or not (a.ndim == 2 and axis in (1, -1)):
            return self._serial.scan(op, a, axis)
        parts, _ = self._parallel_over_rows(a, lambda sl: op.scan(a[sl], axis=1))
        return np.concatenate(parts, axis=0)

    def sort(self, a, axis):
        if self._too_small(a) or not (a.ndim == 2 and axis in (1, -1)):
            return self._serial.sort(a, axis)
        parts, _ = self._parallel_over_rows(a, lambda sl: np.sort(a[sl], axis=1, kind="stable"))
        return np.concatenate(parts, axis=0)

    def argsort(self, a, axis):
        if self._too_small(a) or not (a.ndim == 2 and axis in (1, -1)):
            return self._serial.argsort(a, axis)
        parts, _ = self._parallel_over_rows(
            a, lambda sl: np.argsort(a[sl], axis=1, kind="stable")
        )
        return np.concatenate(parts, axis=0)

    def close(self):
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
