"""Execution backends for the PRAM primitives.

Two backends implement the same tiny kernel interface:

* :class:`SerialBackend` — plain NumPy. The default; model costs are
  charged identically regardless of backend.
* :class:`ThreadBackend` — row-blocked ``ThreadPoolExecutor``. NumPy
  ufuncs release the GIL while crunching, so threads deliver genuine
  wall-clock parallelism on large arrays (this is the substitution for
  physical PRAM processors noted in DESIGN.md: the GIL does not
  serialize NumPy kernels). Small arrays fall through to serial
  execution because thread handoff would dominate.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.errors import InvalidParameterError
from repro.pram.operators import AssociativeOp


def _axpy_kernel(a, x, y, clamp_min, mask, fill):
    """``a*x + y`` with optional lower clamp and mask-select, minimizing
    temporaries (the shared serial kernel behind ``fused_axpy``)."""
    x = np.asarray(x)
    operands = [x] + [np.asarray(v) for v in (y, mask) if isinstance(v, np.ndarray)]
    shape = np.broadcast_shapes(*(v.shape for v in operands))
    out = np.multiply(np.broadcast_to(x, shape), a)
    out += y
    if clamp_min is not None:
        np.maximum(out, clamp_min, out=out)
    if mask is not None:
        out = np.where(mask, out, fill)
    return out


class Backend:
    """Kernel interface shared by all backends."""

    name = "abstract"

    def elementwise(self, fn, arrays: tuple[np.ndarray, ...]) -> np.ndarray:
        """Apply vectorized ``fn`` to ``arrays`` (already broadcast)."""
        raise NotImplementedError

    def reduce(self, op: AssociativeOp, a: np.ndarray, axis) -> np.ndarray:
        raise NotImplementedError

    def scan(self, op: AssociativeOp, a: np.ndarray, axis: int) -> np.ndarray:
        raise NotImplementedError

    def sort(self, a: np.ndarray, axis: int) -> np.ndarray:
        raise NotImplementedError

    def argsort(self, a: np.ndarray, axis: int) -> np.ndarray:
        raise NotImplementedError

    def count_votes(self, labels: np.ndarray, minlength: int) -> np.ndarray:
        """Segmented count: ``out[i] = #{j : labels[j] == i}``."""
        raise NotImplementedError

    def fused_axpy(self, a, x, y, *, clamp_min=None, mask=None, fill=0.0) -> np.ndarray:
        """One-pass ``a*x + y`` with optional clamp/mask (a is scalar)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any worker resources (no-op for serial)."""


class SerialBackend(Backend):
    """Direct NumPy execution on the calling thread."""

    name = "serial"

    def elementwise(self, fn, arrays):
        return fn(*arrays)

    def reduce(self, op, a, axis):
        return op.reduce(a, axis=axis)

    def scan(self, op, a, axis):
        return op.scan(a, axis=axis)

    def sort(self, a, axis):
        return np.sort(a, axis=axis, kind="stable")

    def argsort(self, a, axis):
        return np.argsort(a, axis=axis, kind="stable")

    def count_votes(self, labels, minlength):
        return np.bincount(labels, minlength=minlength)

    def fused_axpy(self, a, x, y, *, clamp_min=None, mask=None, fill=0.0):
        return _axpy_kernel(a, x, y, clamp_min, mask, fill)


class ThreadBackend(Backend):
    """Row-blocked thread-parallel execution.

    Parameters
    ----------
    num_workers:
        Worker thread count; defaults to ``os.cpu_count()``.
    grain:
        Minimum elements per task; arrays smaller than
        ``grain * num_workers`` run serially to avoid dispatch overhead.
    """

    name = "thread"

    def __init__(self, num_workers: int | None = None, *, grain: int = 1 << 14):
        workers = num_workers if num_workers is not None else (os.cpu_count() or 1)
        if workers < 1:
            raise InvalidParameterError(f"num_workers must be >= 1, got {num_workers}")
        self.num_workers = int(workers)
        self.grain = int(grain)
        self._pool = ThreadPoolExecutor(max_workers=self.num_workers) if self.num_workers > 1 else None
        self._serial = SerialBackend()

    # -- helpers ----------------------------------------------------------

    def _pool_worthy(self, shape: tuple) -> bool:
        """Single dispatch policy for every kernel: run on the pool only
        when there are rows to split and enough elements per worker."""
        return not (
            self._pool is None
            or len(shape) == 0
            or shape[0] < 2
            or int(np.prod(shape)) < self.grain * self.num_workers
        )

    def _too_small(self, a: np.ndarray) -> bool:
        return not self._pool_worthy(a.shape)

    def _row_chunks(self, n_rows: int):
        """Split ``range(n_rows)`` into at most ``num_workers`` slices."""
        per = -(-n_rows // self.num_workers)
        return [slice(s, min(s + per, n_rows)) for s in range(0, n_rows, per)]

    def _parallel_over_rows(self, a: np.ndarray, task):
        chunks = self._row_chunks(a.shape[0])
        parts = list(self._pool.map(task, chunks))
        return parts, chunks

    # -- kernel interface ---------------------------------------------------

    def elementwise(self, fn, arrays):
        arrs = [np.asarray(x) for x in arrays]
        try:
            shape = np.broadcast_shapes(*(a.shape for a in arrs))
        except ValueError:
            # Not mutually broadcastable (fn handles shapes itself).
            return self._serial.elementwise(fn, arrays)
        if not self._pool_worthy(shape):
            return self._serial.elementwise(fn, arrays)
        # Broadcast every argument up front (views, no copies) so
        # mixed-shape maps — e.g. an (n_f, 1) cost column against an
        # (n_f, n_c) matrix — run on the pool instead of silently
        # dropping to serial.
        views = [np.broadcast_to(a, shape) for a in arrs]
        chunks = self._row_chunks(shape[0])
        parts = list(self._pool.map(lambda sl: fn(*(v[sl] for v in views)), chunks))
        return np.concatenate(parts, axis=0)

    def reduce(self, op, a, axis):
        if self._too_small(a):
            return self._serial.reduce(op, a, axis)
        if axis in (1, -1) and a.ndim == 2:
            # Independent row reductions: perfectly row-parallel.
            parts, _ = self._parallel_over_rows(a, lambda sl: op.reduce(a[sl], axis=1))
            return np.concatenate(parts, axis=0)
        if axis is None:
            parts, _ = self._parallel_over_rows(a, lambda sl: op.reduce(a[sl], axis=None))
            return op.reduce(np.asarray(parts), axis=None)
        if axis == 0 and a.ndim == 2:
            # Tree-combine partial column reductions from row blocks.
            parts, _ = self._parallel_over_rows(a, lambda sl: op.reduce(a[sl], axis=0))
            return op.reduce(np.stack(parts, axis=0), axis=0)
        return self._serial.reduce(op, a, axis)

    def scan(self, op, a, axis):
        if self._too_small(a) or not (a.ndim == 2 and axis in (1, -1)):
            return self._serial.scan(op, a, axis)
        parts, _ = self._parallel_over_rows(a, lambda sl: op.scan(a[sl], axis=1))
        return np.concatenate(parts, axis=0)

    def sort(self, a, axis):
        if self._too_small(a) or not (a.ndim == 2 and axis in (1, -1)):
            return self._serial.sort(a, axis)
        parts, _ = self._parallel_over_rows(a, lambda sl: np.sort(a[sl], axis=1, kind="stable"))
        return np.concatenate(parts, axis=0)

    def argsort(self, a, axis):
        if self._too_small(a) or not (a.ndim == 2 and axis in (1, -1)):
            return self._serial.argsort(a, axis)
        parts, _ = self._parallel_over_rows(
            a, lambda sl: np.argsort(a[sl], axis=1, kind="stable")
        )
        return np.concatenate(parts, axis=0)

    def count_votes(self, labels, minlength):
        if not self._pool_worthy(labels.shape):
            return self._serial.count_votes(labels, minlength)
        slices = self._row_chunks(labels.size)
        parts = list(
            self._pool.map(lambda sl: np.bincount(labels[sl], minlength=minlength), slices)
        )
        return np.sum(np.stack(parts, axis=0), axis=0)

    def fused_axpy(self, a, x, y, *, clamp_min=None, mask=None, fill=0.0):
        x = np.asarray(x)
        operands = [x] + [np.asarray(v) for v in (y, mask) if isinstance(v, np.ndarray)]
        shape = np.broadcast_shapes(*(v.shape for v in operands))
        if not self._pool_worthy(shape):
            return self._serial.fused_axpy(a, x, y, clamp_min=clamp_min, mask=mask, fill=fill)
        xv = np.broadcast_to(x, shape)
        yv = np.broadcast_to(np.asarray(y), shape) if isinstance(y, np.ndarray) else y
        mv = np.broadcast_to(mask, shape) if isinstance(mask, np.ndarray) else mask
        chunks = self._row_chunks(shape[0])
        parts = list(
            self._pool.map(
                lambda sl: _axpy_kernel(
                    a,
                    xv[sl],
                    yv[sl] if isinstance(yv, np.ndarray) else yv,
                    clamp_min,
                    mv[sl] if isinstance(mv, np.ndarray) else mv,
                    fill,
                ),
                chunks,
            )
        )
        return np.concatenate(parts, axis=0)

    def close(self):
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
