"""Execution backends for the PRAM primitives.

Three interchangeable backends implement the same tiny kernel
interface; a :class:`PramMachine` runs every primitive through one of
them, and the ledger's model charges are identical regardless of which
(charges are computed from array sizes, never from how the kernel
executed):

* :class:`SerialBackend` — plain NumPy on the calling thread. The
  default; also the reference implementation every other backend is
  property-tested against.
* :class:`ThreadBackend` — row-blocked ``ThreadPoolExecutor``. NumPy
  ufuncs release the GIL while crunching, so threads deliver genuine
  wall-clock parallelism on large arrays (this is the substitution for
  physical PRAM processors noted in DESIGN.md: the GIL does not
  serialize NumPy kernels).
* :class:`ProcessBackend` — row-blocked ``ProcessPoolExecutor`` over
  ``multiprocessing.shared_memory``. Matrices travel to the workers by
  shared-memory *name*, never by pickled value, so per-call transport
  is one copy into (and one out of) a shared segment; the row blocks
  themselves are computed across cores. Pays off when the per-element
  arithmetic is heavy enough to beat the copy, or when a NumPy build
  holds the GIL.

All pool backends share one dispatch policy: arrays smaller than
``grain × num_workers`` (or with fewer than two rows) fall through to
serial execution, because pool handoff would dominate. That fallback is
also the pinned-down behavior after :meth:`Backend.close`: a closed
backend keeps producing correct results, serially.

Backends are constructed directly, through :func:`make_backend`
(``"serial" | "thread" | "process" | "auto"``), or implicitly via the
``REPRO_BACKEND`` / ``REPRO_NUM_WORKERS`` / ``REPRO_GRAIN`` environment
variables consulted by :func:`shared_backend` when a
:class:`~repro.pram.machine.PramMachine` is built without an explicit
backend instance.
"""

from __future__ import annotations

import atexit
import marshal
import os
import pickle
import sys
import threading
import time
import types
import weakref
from concurrent.futures import (
    CancelledError,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from multiprocessing import get_context, resource_tracker, shared_memory

import numpy as np

from repro.errors import InvalidParameterError
from repro.obs.tracer import current_trace_id, current_tracer
from repro.pram.operators import AssociativeOp


def _segmented_reduce_kernel(op, values, indptr):
    """Per-segment reduction over a flat CSR-style array (the shared
    serial kernel behind ``segmented_reduce``).

    ``out[s] = op.reduce(values[indptr[s]:indptr[s+1]])``, with the
    operator identity for empty segments. One ``reduceat`` pass —
    ``O(nnz + n_segments)`` work. ``reduceat`` combines each segment
    left-to-right, so results are deterministic and independent of how
    segments are chunked across workers (a segment is never split).
    """
    n = indptr.size - 1
    lens = np.diff(indptr)
    # Appending the identity keeps the trailing segment well-defined and
    # gives empty segments at position nnz a valid index to read; it
    # also fixes the output dtype by the same promotion rule on every
    # slice (so chunked and whole-array passes agree).
    gathered = np.append(values, np.asarray(op.identity))
    if values.size == 0:
        return np.full(n, op.identity, dtype=gathered.dtype)
    out = op.ufunc.reduceat(gathered, indptr[:-1])
    if np.any(lens == 0):
        out[lens == 0] = op.identity
    return out


def _axpy_kernel(a, x, y, clamp_min, mask, fill):
    """``a*x + y`` with optional lower clamp and mask-select, minimizing
    temporaries (the shared serial kernel behind ``fused_axpy``)."""
    x = np.asarray(x)
    operands = [x] + [np.asarray(v) for v in (y, mask) if isinstance(v, np.ndarray)]
    shape = np.broadcast_shapes(*(v.shape for v in operands))
    out = np.multiply(np.broadcast_to(x, shape), a)
    out += y
    if clamp_min is not None:
        np.maximum(out, clamp_min, out=out)
    if mask is not None:
        out = np.where(mask, out, fill)
    return out


_PICKLABLE_FNS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def fn_picklable(fn) -> bool:
    """Whether ``fn`` survives ``pickle.dumps`` — cached per function.

    ``submit_batch`` (and the faults supervisor on top of it) probes the
    task callable before every process-pool fan-out; serializing the
    same module-level function once per batch is pure waste, so the
    verdict is memoized in a :class:`weakref.WeakKeyDictionary` (no
    lifetime extension — a function that dies drops its entry).
    Callables that resist weak references fall back to a direct probe.
    """
    try:
        cached = _PICKLABLE_FNS.get(fn)
    except TypeError:
        cached = None
    if cached is not None:
        return cached
    try:
        pickle.dumps(fn)
        ok = True
    except Exception:
        ok = False
    try:
        _PICKLABLE_FNS[fn] = ok
    except TypeError:
        pass
    return ok


class _TracedResult:
    """Worker-side timing riding back with a batch task's result.

    Created inside the worker (process or thread) by :class:`_TracedTask`
    and unwrapped by the parent, which emits the queue-wait and exec
    spans on a per-worker lane. Timestamps are ``perf_counter_ns()``
    microseconds — ``CLOCK_MONOTONIC``, shared across processes on the
    same machine, so they land on the driver's time axis directly.
    """

    __slots__ = ("value", "pid", "tid", "start_us", "end_us", "trace_id")

    def __init__(self, value, pid, tid, start_us, end_us, trace_id=None):
        self.value = value
        self.pid = pid
        self.tid = tid
        self.start_us = start_us
        self.end_us = end_us
        self.trace_id = trace_id

    def __reduce__(self):
        return (
            _TracedResult,
            (self.value, self.pid, self.tid, self.start_us, self.end_us,
             self.trace_id),
        )


class _TracedTask:
    """Picklable wrapper that stamps a batch task with worker-local timing.

    Wraps the user's ``fn`` for the duration of one traced
    ``submit_batch``; works identically on every execution path — pool
    worker, thread pool, serial fallback, cancellation rerun — because
    it *is* the fn the backend runs.

    The driver's ambient request trace id (if any) is captured at
    construction and pickled with the task, so the envelope a forked
    worker sends back is already stamped with the request it served —
    the cross-process half of request tracing.
    """

    __slots__ = ("fn", "trace_id")
    _UNSET = object()

    def __init__(self, fn, trace_id=_UNSET):
        self.fn = fn
        self.trace_id = (
            current_trace_id() if trace_id is _TracedTask._UNSET else trace_id
        )

    def __call__(self, item):
        start = time.perf_counter_ns() // 1000
        value = self.fn(item)
        return _TracedResult(
            value,
            os.getpid(),
            threading.get_native_id(),
            start,
            time.perf_counter_ns() // 1000,
            self.trace_id,
        )

    def __reduce__(self):
        return (_TracedTask, (self.fn, self.trace_id))


def _traced_batch(backend, tracer, fn, items) -> list:
    """Run one traced batch: wrap ``fn``, unwrap results, emit spans.

    Per task the trace gains two complete events on the executing
    worker's lane — ``queue_wait`` (submit to exec-start) and ``exec``
    (the task body) — the utilization/straggler raw material. Results
    are returned exactly as the unwrapped ``fn`` produced them, so
    traced and untraced batches are byte-identical.
    """
    submit_ts = tracer.now()
    raw = backend._submit_batch(_TracedTask(fn), items)
    results = []
    exec_hist = tracer.metrics.histogram("backend.exec_us")
    wait_hist = tracer.metrics.histogram("backend.queue_wait_us")
    for i, out in enumerate(raw):
        if isinstance(out, _TracedResult):
            lane = tracer.worker_lane(out.pid, out.tid)
            queued = max(out.start_us - submit_ts, 0)
            dur = max(out.end_us - out.start_us, 0)
            task_args = {"task": i, "backend": backend.name}
            if out.trace_id is not None:
                # the id the task was dispatched under — authoritative
                # even if this thread's ambient context moved on
                task_args["trace_id"] = out.trace_id
            tracer.complete("queue_wait", "backend", submit_ts, queued, tid=lane, args=task_args)
            tracer.complete("exec", "backend", out.start_us, dur, tid=lane, args=task_args)
            wait_hist.observe(queued)
            exec_hist.observe(dur)
            results.append(out.value)
        else:
            # A path that bypassed the wrapper (shouldn't happen, but a
            # raw value must never leak a timing envelope to the caller).
            results.append(out)
    tracer.metrics.counter("backend.batch_tasks").inc(len(items))
    return results


def _record_shm_bytes(shms) -> None:
    """Account shared-memory bytes shipped for a traced batch."""
    tracer = current_tracer()
    if not tracer.enabled or not shms:
        return
    nbytes = int(sum(s.size for s in shms))
    tracer.metrics.counter("backend.shm_bytes_shipped").inc(nbytes)
    tracer.counter_event("shm_bytes", {"shipped": nbytes})


class Backend:
    """Kernel interface shared by all backends.

    Backends are context managers: ``with make_backend("thread") as b``
    guarantees the worker pool is released. ``close`` is idempotent,
    and a closed backend still executes every kernel correctly — it
    just runs serially (see :attr:`closed`).
    """

    name = "abstract"

    def elementwise(self, fn, arrays: tuple[np.ndarray, ...]) -> np.ndarray:
        """Apply vectorized ``fn`` to ``arrays`` (already broadcast)."""
        raise NotImplementedError

    def reduce(self, op: AssociativeOp, a: np.ndarray, axis) -> np.ndarray:
        raise NotImplementedError

    def scan(self, op: AssociativeOp, a: np.ndarray, axis: int) -> np.ndarray:
        raise NotImplementedError

    def sort(self, a: np.ndarray, axis: int) -> np.ndarray:
        raise NotImplementedError

    def argsort(self, a: np.ndarray, axis: int) -> np.ndarray:
        raise NotImplementedError

    def count_votes(self, labels: np.ndarray, minlength: int) -> np.ndarray:
        """Segmented count: ``out[i] = #{j : labels[j] == i}``."""
        raise NotImplementedError

    def segmented_reduce(
        self, op: AssociativeOp, values: np.ndarray, indptr: np.ndarray
    ) -> np.ndarray:
        """Per-segment reduction over a flat CSR-style array.

        ``indptr`` (length ``n_segments + 1``) delimits contiguous
        segments of ``values``; empty segments reduce to the operator
        identity. Segments are never split across workers, so results
        are byte-identical on every backend.
        """
        raise NotImplementedError

    def fused_axpy(self, a, x, y, *, clamp_min=None, mask=None, fill=0.0) -> np.ndarray:
        """One-pass ``a*x + y`` with optional clamp/mask (a is scalar)."""
        raise NotImplementedError

    def submit_batch(self, fn, items) -> list:
        """Run ``fn`` over ``items``, one task each, preserving order.

        The coarse-grained counterpart of the row-blocked kernels: used
        by the shard subsystem to execute independent per-shard jobs
        (e.g. coreset builds) over whatever worker pool this backend
        owns. The serial backend — and any closed/pool-less backend —
        runs the tasks in a plain loop, so results are identical on
        every backend provided ``fn`` is deterministic per item. On a
        process pool ``fn`` and each item must be picklable; an
        unpicklable ``fn`` is detected up front and falls back to the
        serial loop, while unpicklable *items* (or return values) and
        exceptions raised by ``fn`` itself propagate to the caller —
        no task ever runs twice.

        When a tracer is active (``REPRO_TRACE`` / ``set_tracer``) each
        task additionally reports worker-local timing that the driver
        turns into per-lane queue-wait and exec spans; results are
        byte-identical to an untraced batch. With tracing off, this
        method is exactly :meth:`_submit_batch` — no wrapper objects
        are created.
        """
        items = list(items)
        tracer = current_tracer()
        if tracer.enabled and items:
            return _traced_batch(self, tracer, fn, items)
        return self._submit_batch(fn, items)

    def _submit_batch(self, fn, items) -> list:
        """Backend-specific batch execution (see :meth:`submit_batch`)."""
        return [fn(item) for item in items]

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run (kernels then execute serially)."""
        return False

    def close(self) -> None:
        """Release any worker resources (no-op for serial, idempotent)."""

    def __enter__(self) -> "Backend":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


class SerialBackend(Backend):
    """Direct NumPy execution on the calling thread."""

    name = "serial"

    def elementwise(self, fn, arrays):
        return fn(*arrays)

    def reduce(self, op, a, axis):
        return op.reduce(a, axis=axis)

    def scan(self, op, a, axis):
        return op.scan(a, axis=axis)

    def sort(self, a, axis):
        return np.sort(a, axis=axis, kind="stable")

    def argsort(self, a, axis):
        return np.argsort(a, axis=axis, kind="stable")

    def count_votes(self, labels, minlength):
        return np.bincount(labels, minlength=minlength)

    def segmented_reduce(self, op, values, indptr):
        return _segmented_reduce_kernel(op, values, indptr)

    def fused_axpy(self, a, x, y, *, clamp_min=None, mask=None, fill=0.0):
        return _axpy_kernel(a, x, y, clamp_min, mask, fill)


class _BlockedBackend(Backend):
    """Shared scaffolding for row-blocked pool backends.

    Owns the dispatch policy (``_pool_worthy``), the row chunking, the
    serial fallback, and the close/context-manager lifecycle. Concrete
    backends provide ``_make_pool`` plus the kernels.
    """

    #: Whether batch tasks cross a pickling boundary (process pools);
    #: gates submit_batch's fn-picklability probe.
    _batch_requires_pickle = False

    #: Whether submit_batch moves ndarray item arguments by
    #: shared-memory segment name instead of pickled value (process
    #: pools with ``shm_items=True``).
    _batch_shm_items = False

    def __init__(self, num_workers: int | None = None, *, grain: int):
        workers = num_workers if num_workers is not None else (os.cpu_count() or 1)
        if workers < 1:
            raise InvalidParameterError(f"num_workers must be >= 1, got {num_workers}")
        self.num_workers = int(workers)
        self.grain = int(grain)
        self._pool = self._make_pool() if self.num_workers > 1 else None
        self._serial = SerialBackend()
        self._closed = False
        # Guards the pool handle and the in-flight batch futures against
        # a concurrent close(): batches drain deterministically instead
        # of racing shutdown (see close()).
        self._lock = threading.Lock()
        self._inflight: set = set()

    def _make_pool(self):
        raise NotImplementedError

    # -- lifecycle --------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self):
        """Shut the worker pool down (idempotent, thread-safe).

        After closing, every kernel keeps working via the serial
        fallback — the pinned-down use-after-close contract, asserted
        by the backend test suite. A close racing an in-flight
        :meth:`submit_batch` is deterministic: batch tasks already
        running are drained (``shutdown(wait=True)`` joins them), tasks
        still queued are cancelled — the batch caller observes the
        cancellation and runs those items serially, exactly once. No
        path deadlocks: close never waits on anything the batch caller
        holds.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pool, self._pool = self._pool, None
            inflight = list(self._inflight)
        for fut in inflight:
            fut.cancel()
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    def _respawn_pool(self):
        """Replace a broken/hung worker pool with a fresh one.

        The recovery hook used by :class:`repro.faults.Supervisor`
        after a worker crash (``BrokenProcessPool``) or a process-pool
        timeout: the old pool is abandoned without joining (its workers
        are dead or hung), outstanding futures are cancelled, and — on a
        still-open backend — a new pool of the same size takes its
        place. Returns the new pool (``None`` when closed or
        single-worker)."""
        with self._lock:
            pool, self._pool = self._pool, None
            inflight = list(self._inflight)
            self._inflight.clear()
        for fut in inflight:
            fut.cancel()
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        with self._lock:
            if not self._closed and self._pool is None and self.num_workers > 1:
                self._pool = self._make_pool()
            return self._pool

    # -- helpers ----------------------------------------------------------

    def _pool_worthy(self, shape: tuple) -> bool:
        """Single dispatch policy for every kernel: run on the pool only
        when there are rows to split and enough elements per worker."""
        return not (
            self._pool is None
            or len(shape) == 0
            or shape[0] < 2
            or int(np.prod(shape)) < self.grain * self.num_workers
        )

    def _too_small(self, a: np.ndarray) -> bool:
        return not self._pool_worthy(a.shape)

    def _row_chunks(self, n_rows: int):
        """Split ``range(n_rows)`` into at most ``num_workers`` slices."""
        per = -(-n_rows // self.num_workers)
        return [slice(s, min(s + per, n_rows)) for s in range(0, n_rows, per)]

    def _submit_batch(self, fn, items) -> list:
        """Fan independent tasks across the pool (order-preserving).

        Unlike the element-count dispatch of the kernels, batches go to
        the pool whenever it exists and there is more than one task —
        per-shard jobs are coarse by construction. On a process pool an
        unpicklable ``fn`` is detected by a (per-function cached)
        ``pickle.dumps`` probe *before* anything runs and falls back to
        the serial loop. When the backend transports items by shared
        memory (:class:`ProcessBackend` with ``shm_items=True``), large
        ndarrays inside each item cross by segment name — the pickled
        task payload carries only refs — and results are byte-identical
        to the pickled transport (the parity suite asserts it).

        Failure contract (pinned by the backend test suite):

        * an exception raised by ``fn`` on item ``i`` cancels every
          outstanding task, waits out whatever is already running, and
          re-raises with the item index attached (``exc.batch_index``
          plus an ``add_note`` line) — never a silent swallow, and no
          task ever executes twice;
        * a concurrent :meth:`close` drains deterministically: tasks it
          cancelled before they started are re-run serially exactly
          once, everything else completes on the pool.
        """
        items = list(items)
        with self._lock:
            pool = None if self._closed else self._pool
        if pool is None or len(items) < 2:
            return self._serial_batch(fn, items)
        if self._batch_requires_pickle and not fn_picklable(fn):
            return self._serial_batch(fn, items)
        item_shms: list = []
        try:
            if self._batch_shm_items:
                packed_items, _ = pack_batch_items(items, item_shms)
                _record_shm_bytes(item_shms)
            try:
                with self._lock:
                    if self._closed or self._pool is None:
                        raise RuntimeError("backend closed under submit_batch")
                    if self._batch_shm_items:
                        futures = [
                            self._pool.submit(_shm_batch_call, fn, packed)
                            for packed in packed_items
                        ]
                    else:
                        futures = [self._pool.submit(fn, item) for item in items]
                    self._inflight.update(futures)
            except RuntimeError:
                # Closed (or pool shut down) between the check and the
                # submit: honor the use-after-close contract serially.
                return self._serial_batch(fn, items)
            try:
                results: list = [None] * len(items)
                for i, fut in enumerate(futures):
                    try:
                        results[i] = fut.result()
                    except CancelledError:
                        # close() cancelled it before it started — run the
                        # item serially, its one and only execution.
                        try:
                            results[i] = fn(items[i])
                        except Exception as exc:
                            self._annotate_batch_failure(exc, i, len(items))
                            raise
                    except Exception as exc:
                        for later in futures[i + 1:]:
                            later.cancel()
                        wait(futures[i + 1:])
                        self._annotate_batch_failure(exc, i, len(items))
                        raise
                return results
            finally:
                with self._lock:
                    self._inflight.difference_update(futures)
        finally:
            # By here every future is done or cancelled-before-start
            # (the result loop waits them out on all paths), so no
            # worker is mid-attach: unlinking the item segments is safe.
            for shm in item_shms:
                shm.close()
                shm.unlink()

    def _annotate_batch_failure(self, exc, index: int, total: int) -> None:
        """Attach the failing item's position to a batch exception —
        the failure contract above."""
        exc.batch_index = index
        exc.add_note(
            f"submit_batch: item {index} of {total} failed on the "
            f"{self.name} backend"
        )

    def _serial_batch(self, fn, items) -> list:
        """Pool-less fallback loop with the same failure annotation as
        the pool path."""
        results = []
        for i, item in enumerate(items):
            try:
                results.append(fn(item))
            except Exception as exc:
                self._annotate_batch_failure(exc, i, len(items))
                raise
        return results


class ThreadBackend(_BlockedBackend):
    """Row-blocked thread-parallel execution.

    Parameters
    ----------
    num_workers:
        Worker thread count; defaults to ``os.cpu_count()``.
    grain:
        Minimum elements per task; arrays smaller than
        ``grain * num_workers`` run serially to avoid dispatch overhead.
    """

    name = "thread"

    def __init__(self, num_workers: int | None = None, *, grain: int = 1 << 14):
        super().__init__(num_workers, grain=grain)

    def _make_pool(self):
        return ThreadPoolExecutor(max_workers=self.num_workers)

    def _parallel_over_rows(self, a: np.ndarray, task):
        chunks = self._row_chunks(a.shape[0])
        parts = list(self._pool.map(task, chunks))
        return parts, chunks

    # -- kernel interface ---------------------------------------------------

    def elementwise(self, fn, arrays):
        arrs = [np.asarray(x) for x in arrays]
        try:
            shape = np.broadcast_shapes(*(a.shape for a in arrs))
        except ValueError:
            # Not mutually broadcastable (fn handles shapes itself).
            return self._serial.elementwise(fn, arrays)
        if not self._pool_worthy(shape):
            return self._serial.elementwise(fn, arrays)
        # Broadcast every argument up front (views, no copies) so
        # mixed-shape maps — e.g. an (n_f, 1) cost column against an
        # (n_f, n_c) matrix — run on the pool instead of silently
        # dropping to serial.
        views = [np.broadcast_to(a, shape) for a in arrs]
        chunks = self._row_chunks(shape[0])
        parts = list(self._pool.map(lambda sl: fn(*(v[sl] for v in views)), chunks))
        return np.concatenate(parts, axis=0)

    def reduce(self, op, a, axis):
        if self._too_small(a):
            return self._serial.reduce(op, a, axis)
        if axis in (1, -1) and a.ndim == 2:
            # Independent row reductions: perfectly row-parallel.
            parts, _ = self._parallel_over_rows(a, lambda sl: op.reduce(a[sl], axis=1))
            return np.concatenate(parts, axis=0)
        if axis is None:
            parts, _ = self._parallel_over_rows(a, lambda sl: op.reduce(a[sl], axis=None))
            return op.reduce(np.asarray(parts), axis=None)
        if axis == 0 and a.ndim == 2:
            # Tree-combine partial column reductions from row blocks.
            parts, _ = self._parallel_over_rows(a, lambda sl: op.reduce(a[sl], axis=0))
            return op.reduce(np.stack(parts, axis=0), axis=0)
        return self._serial.reduce(op, a, axis)

    def scan(self, op, a, axis):
        if self._too_small(a) or not (a.ndim == 2 and axis in (1, -1)):
            return self._serial.scan(op, a, axis)
        parts, _ = self._parallel_over_rows(a, lambda sl: op.scan(a[sl], axis=1))
        return np.concatenate(parts, axis=0)

    def sort(self, a, axis):
        if self._too_small(a) or not (a.ndim == 2 and axis in (1, -1)):
            return self._serial.sort(a, axis)
        parts, _ = self._parallel_over_rows(a, lambda sl: np.sort(a[sl], axis=1, kind="stable"))
        return np.concatenate(parts, axis=0)

    def argsort(self, a, axis):
        if self._too_small(a) or not (a.ndim == 2 and axis in (1, -1)):
            return self._serial.argsort(a, axis)
        parts, _ = self._parallel_over_rows(
            a, lambda sl: np.argsort(a[sl], axis=1, kind="stable")
        )
        return np.concatenate(parts, axis=0)

    def count_votes(self, labels, minlength):
        if not self._pool_worthy(labels.shape):
            return self._serial.count_votes(labels, minlength)
        slices = self._row_chunks(labels.size)
        parts = list(
            self._pool.map(lambda sl: np.bincount(labels[sl], minlength=minlength), slices)
        )
        return np.sum(np.stack(parts, axis=0), axis=0)

    def segmented_reduce(self, op, values, indptr):
        n_seg = indptr.size - 1
        if (
            self._pool is None
            or n_seg < 2
            or values.size < self.grain * self.num_workers
        ):
            return self._serial.segmented_reduce(op, values, indptr)
        # Chunk by whole segments: each worker runs the serial kernel on
        # its segment range, so per-segment results are bit-identical to
        # a single-threaded pass.
        chunks = self._row_chunks(n_seg)
        parts = list(
            self._pool.map(
                lambda sl: _segmented_reduce_kernel(
                    op,
                    values[indptr[sl.start] : indptr[sl.stop]],
                    indptr[sl.start : sl.stop + 1] - indptr[sl.start],
                ),
                chunks,
            )
        )
        return np.concatenate(parts)

    def fused_axpy(self, a, x, y, *, clamp_min=None, mask=None, fill=0.0):
        x = np.asarray(x)
        operands = [x] + [np.asarray(v) for v in (y, mask) if isinstance(v, np.ndarray)]
        shape = np.broadcast_shapes(*(v.shape for v in operands))
        if not self._pool_worthy(shape):
            return self._serial.fused_axpy(a, x, y, clamp_min=clamp_min, mask=mask, fill=fill)
        xv = np.broadcast_to(x, shape)
        yv = np.broadcast_to(np.asarray(y), shape) if isinstance(y, np.ndarray) else y
        mv = np.broadcast_to(mask, shape) if isinstance(mask, np.ndarray) else mask
        chunks = self._row_chunks(shape[0])
        parts = list(
            self._pool.map(
                lambda sl: _axpy_kernel(
                    a,
                    xv[sl],
                    yv[sl] if isinstance(yv, np.ndarray) else yv,
                    clamp_min,
                    mv[sl] if isinstance(mv, np.ndarray) else mv,
                    fill,
                ),
                chunks,
            )
        )
        return np.concatenate(parts, axis=0)


# -- process backend: shared-memory transport ------------------------------


class _FnTransportError(Exception):
    """A transported kernel function could not be rebuilt/run in the
    worker (e.g. spawn context with an unimportable definition site).
    The parent catches this and falls back to serial execution."""


def _encode_fn(fn):
    """Serialize a kernel function for a worker process.

    Plain pickle covers module-level callables and NumPy ufuncs.
    Lambdas and nested functions — the common currency of
    ``PramMachine.map`` call sites — are rebuilt from their code object
    plus pickled defaults/closure cells. Same-interpreter only, which
    is all a worker pool ever is; raises if a closure cell itself
    resists pickling (the caller then falls back to serial).
    """
    try:
        return ("pickle", pickle.dumps(fn))
    except Exception:
        cells = tuple(c.cell_contents for c in (fn.__closure__ or ()))
        return (
            "code",
            marshal.dumps(fn.__code__),
            fn.__module__,
            fn.__name__,
            pickle.dumps(fn.__defaults__),
            pickle.dumps(cells),
        )


def _decode_fn(spec):
    """Inverse of :func:`_encode_fn`, run inside a worker."""
    if spec[0] == "pickle":
        return pickle.loads(spec[1])
    _, code_bytes, module, name, defaults_bytes, cells_bytes = spec
    code = marshal.loads(code_bytes)
    mod = sys.modules.get(module)
    if mod is not None:
        global_ns = mod.__dict__
    else:
        # Forked workers inherit the parent's modules; this fallback only
        # fires under spawn for unimportable definition sites.
        global_ns = {"np": np, "numpy": np, "__builtins__": __builtins__}
    closure = tuple(types.CellType(v) for v in pickle.loads(cells_bytes))
    return types.FunctionType(code, global_ns, name, pickle.loads(defaults_bytes), closure)


def _share_array(a: np.ndarray):
    """Copy ``a`` into a fresh shared-memory segment; return (shm, spec)."""
    a = np.ascontiguousarray(a)
    shm = shared_memory.SharedMemory(create=True, size=max(a.nbytes, 1))
    np.ndarray(a.shape, dtype=a.dtype, buffer=shm.buf)[...] = a
    return shm, (shm.name, a.shape, a.dtype.str)


def _attach_array(spec):
    """Attach to a shared segment by name; return (shm, ndarray view)."""
    name, shape, dtype = spec
    shm = shared_memory.SharedMemory(name=name)
    return shm, np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)


#: Arrays below this many bytes ride along pickled inside the task —
#: a shm segment (create + copy + attach round-trip) costs more than
#: pickling a few KiB of data.
SHM_ITEM_MIN_BYTES = 1 << 15


class _ShmItemRef:
    """Placeholder for an ndarray moved into a shared-memory segment.

    Travels inside the pickled batch-task payload in place of the
    array; the worker swaps it back for a read-only view of the
    segment (see :func:`_shm_batch_call`).
    """

    __slots__ = ("spec",)

    def __init__(self, spec):
        self.spec = spec

    def __reduce__(self):
        return (_ShmItemRef, (self.spec,))


def _pack_value(value, shms: list, seen: dict):
    if isinstance(value, np.ndarray):
        if value.dtype.hasobject or value.nbytes < SHM_ITEM_MIN_BYTES:
            return value
        ref = seen.get(id(value))
        if ref is None:
            shm, spec = _share_array(value)
            shms.append(shm)
            ref = _ShmItemRef(spec)
            seen[id(value)] = ref
        return ref
    if isinstance(value, tuple):
        return tuple(_pack_value(v, shms, seen) for v in value)
    if isinstance(value, list):
        return [_pack_value(v, shms, seen) for v in value]
    if isinstance(value, dict):
        return {k: _pack_value(v, shms, seen) for k, v in value.items()}
    return value


def pack_batch_items(items, shms: list | None = None):
    """Replace every large ndarray inside ``items`` with a shm ref.

    Tuples, lists, and dicts are walked recursively; anything else
    passes through pickled as-is. Returns ``(packed_items, segments)``
    — the caller owns the segments and must close + unlink them once
    the batch has drained. An array object appearing in several items
    is shared through a single segment. Passing ``shms`` lets the
    caller observe segments created *before* a mid-pack failure (they
    are appended as created), so nothing leaks on that path.
    """
    if shms is None:
        shms = []
    seen: dict = {}
    return [_pack_value(item, shms, seen) for item in items], shms


def _unpack_value(value, shms: list):
    if isinstance(value, _ShmItemRef):
        shm, arr = _attach_array(value.spec)
        shms.append(shm)
        arr.flags.writeable = False
        return arr
    if isinstance(value, tuple):
        return tuple(_unpack_value(v, shms) for v in value)
    if isinstance(value, list):
        return [_unpack_value(v, shms) for v in value]
    if isinstance(value, dict):
        return {k: _unpack_value(v, shms) for k, v in value.items()}
    return value


def _shm_batch_call(fn, packed):
    """Worker-side batch shim: rebuild the item (shared-memory refs →
    read-only array views) and run ``fn`` on it.

    Contract: ``fn`` must not return live views of its item arrays —
    the segments close when this call returns, *before* the result
    pickles back to the parent. Task functions in this codebase return
    fancy-indexed (hence copied) arrays, so the contract holds by
    construction; it is the same contract the pickled transport imposed
    implicitly (pickling a view copies it).
    """
    shms: list = []
    try:
        return fn(_unpack_value(packed, shms))
    finally:
        for shm in shms:
            shm.close()


def _pool_task(kind, out_spec, out_index, in_specs, sl, payload):
    """One row-block task, executed inside a worker process.

    Arrays travel by shared-memory name only — the task tuple itself
    carries a few strings and scalars. ``sl`` is the input row slice;
    ``out_index`` addresses where this block's result lands in the
    output segment (the same rows for row-parallel kernels, a partial
    slot for combine kernels).
    """
    shms = []
    try:
        arrays = []
        for spec in in_specs:
            shm, arr = _attach_array(spec)
            shms.append(shm)
            arrays.append(arr)
        out_shm, out = _attach_array(out_spec)
        shms.append(out_shm)
        if kind == "elementwise":
            shape, fn_spec = payload
            try:
                fn = _decode_fn(fn_spec)
                block = fn(*(np.broadcast_to(a, shape)[sl] for a in arrays))
            except Exception as exc:
                # Signal the parent to rerun serially: a function that
                # survives encoding can still fail to rebuild under a
                # spawn context (unimportable definition module).
                raise _FnTransportError(repr(exc)) from exc
            out[out_index] = block
        elif kind == "reduce_rows":
            out[out_index] = payload.reduce(arrays[0][sl], axis=1)
        elif kind == "reduce_partial":
            op, axis = payload
            out[out_index] = op.reduce(arrays[0][sl], axis=axis)
        elif kind == "scan_rows":
            out[out_index] = payload.scan(arrays[0][sl], axis=1)
        elif kind == "sort_rows":
            out[out_index] = np.sort(arrays[0][sl], axis=1, kind="stable")
        elif kind == "argsort_rows":
            out[out_index] = np.argsort(arrays[0][sl], axis=1, kind="stable")
        elif kind == "count_votes":
            out[out_index] = np.bincount(arrays[0][sl], minlength=payload)
        elif kind == "segmented_reduce":
            vals, iptr = arrays
            lo, hi = sl.start, sl.stop
            out[out_index] = _segmented_reduce_kernel(
                payload, vals[iptr[lo] : iptr[hi]], iptr[lo : hi + 1] - iptr[lo]
            )
        elif kind == "fused_axpy":
            shape, a_scal, y_is_arr, y_val, clamp_min, mask_is_arr, mask_val, fill = payload
            arr_it = iter(arrays)
            xv = np.broadcast_to(next(arr_it), shape)
            yv = np.broadcast_to(next(arr_it), shape) if y_is_arr else y_val
            mv = np.broadcast_to(next(arr_it), shape) if mask_is_arr else mask_val
            out[out_index] = _axpy_kernel(
                a_scal,
                xv[sl],
                yv[sl] if isinstance(yv, np.ndarray) else yv,
                clamp_min,
                mv[sl] if isinstance(mv, np.ndarray) else mv,
                fill,
            )
        else:
            raise InvalidParameterError(f"unknown pool task kind {kind!r}")
    finally:
        for shm in shms:
            shm.close()


class ProcessBackend(_BlockedBackend):
    """Row-blocked process-parallel execution over shared memory.

    Input matrices are copied once into ``multiprocessing.shared_memory``
    segments; workers attach by name, compute their row block, and write
    into a shared output segment — no matrix is ever pickled. Kernel
    functions cross the boundary as pickled callables, or (for lambdas)
    as marshalled code objects with pickled closure cells; a function
    that resists both runs serially.

    Parameters
    ----------
    num_workers:
        Worker process count; defaults to ``os.cpu_count()``. With one
        worker no pool is created and everything runs serially.
    grain:
        Minimum elements per task. The default is coarser than
        :class:`ThreadBackend`'s because process dispatch (shm create +
        copy + task round-trip) costs far more than a thread handoff.
    mp_context:
        ``multiprocessing`` start method; ``"fork"`` (default) lets
        workers inherit loaded modules, which the lambda transport
        relies on. Falls back to the platform default when unavailable.
    shm_items:
        When true (the default), :meth:`submit_batch` moves large
        ndarrays inside each item by shared-memory segment name —
        zero-copy end-to-end, never a pickled point block. ``False``
        restores the pickled transport; the equivalence suite certifies
        both byte-identical.
    """

    name = "process"
    _batch_requires_pickle = True

    def __init__(
        self,
        num_workers: int | None = None,
        *,
        grain: int = 1 << 16,
        mp_context: str | None = "fork",
        shm_items: bool = True,
    ):
        self._mp_context = mp_context
        self._batch_shm_items = bool(shm_items)
        super().__init__(num_workers, grain=grain)

    def _make_pool(self):
        ctx = None
        if self._mp_context is not None:
            try:
                ctx = get_context(self._mp_context)
            except ValueError:
                ctx = None
        # Start the shared-memory resource tracker *before* any worker
        # forks. Workers fork lazily at first submit; if that first
        # submit carries no shared memory (e.g. a pickled submit_batch),
        # the children inherit an unstarted tracker and each spawns its
        # own on first attach — an orphan that only ever sees REGISTERs
        # and warns about phantom "leaked" segments at shutdown.
        try:
            resource_tracker.ensure_running()
        except Exception:  # pragma: no cover - tracker unavailable
            pass
        return ProcessPoolExecutor(max_workers=self.num_workers, mp_context=ctx)

    # -- dispatch ---------------------------------------------------------

    def _run_tasks(self, kind, arrays, out_shape, out_dtype, payload, tasks):
        """Share inputs, fan ``tasks`` (= ``(row_slice, out_index)``)
        across the pool, and copy the shared output back out."""
        in_shms: list = []
        out_shm = None
        try:
            in_specs = []
            for a in arrays:
                shm, spec = _share_array(np.asarray(a))
                in_shms.append(shm)
                in_specs.append(spec)
            out_shape = tuple(int(s) for s in out_shape)
            out_dtype = np.dtype(out_dtype)
            nbytes = max(int(np.prod(out_shape)) * out_dtype.itemsize, 1)
            out_shm = shared_memory.SharedMemory(create=True, size=nbytes)
            out_spec = (out_shm.name, out_shape, out_dtype.str)
            futures = [
                self._pool.submit(_pool_task, kind, out_spec, oix, in_specs, sl, payload)
                for sl, oix in tasks
            ]
            try:
                for fut in futures:
                    fut.result()
            except BaseException:
                # Stop touching the segments before the finally block
                # unlinks them: cancel what hasn't started, then wait out
                # whatever is already running.
                for fut in futures:
                    fut.cancel()
                wait(futures)
                raise
            view = np.ndarray(out_shape, dtype=out_dtype, buffer=out_shm.buf)
            return np.array(view)  # detach from the segment before unlink
        finally:
            for shm in in_shms:
                shm.close()
                shm.unlink()
            if out_shm is not None:
                out_shm.close()
                out_shm.unlink()

    def _row_tasks(self, n_rows: int):
        return [(sl, sl) for sl in self._row_chunks(n_rows)]

    def _partial_tasks(self, n_rows: int):
        return [(sl, k) for k, sl in enumerate(self._row_chunks(n_rows))]

    # -- kernel interface ---------------------------------------------------

    def elementwise(self, fn, arrays):
        arrs = [np.asarray(x) for x in arrays]
        try:
            shape = np.broadcast_shapes(*(a.shape for a in arrs))
        except ValueError:
            return self._serial.elementwise(fn, arrays)
        if not self._pool_worthy(shape):
            return self._serial.elementwise(fn, arrays)
        try:
            fn_spec = _encode_fn(fn)
        except Exception:
            return self._serial.elementwise(fn, arrays)
        # Probe one row in-process: fixes the output dtype (the shared
        # segment must be allocated before workers run) and verifies fn
        # is genuinely elementwise over rows.
        views = [np.broadcast_to(a, shape) for a in arrs]
        probe = np.asarray(fn(*(v[:1] for v in views)))
        if probe.shape != (1,) + tuple(shape[1:]):
            return self._serial.elementwise(fn, arrays)
        try:
            return self._run_tasks(
                "elementwise",
                arrs,
                shape,
                probe.dtype,
                (tuple(shape), fn_spec),
                self._row_tasks(shape[0]),
            )
        except _FnTransportError:
            return self._serial.elementwise(fn, arrays)

    def reduce(self, op, a, axis):
        if self._too_small(a):
            return self._serial.reduce(op, a, axis)
        if axis in (1, -1) and a.ndim == 2:
            probe = np.asarray(op.reduce(a[:1], axis=1))
            return self._run_tasks(
                "reduce_rows", [a], (a.shape[0],), probe.dtype, op, self._row_tasks(a.shape[0])
            )
        if axis is None:
            probe = np.asarray(op.reduce(a[:1], axis=None))
            chunks = self._row_chunks(a.shape[0])
            parts = self._run_tasks(
                "reduce_partial",
                [a],
                (len(chunks),),
                probe.dtype,
                (op, None),
                self._partial_tasks(a.shape[0]),
            )
            return op.reduce(parts, axis=None)
        if axis == 0 and a.ndim == 2:
            probe = np.asarray(op.reduce(a[:1], axis=0))
            chunks = self._row_chunks(a.shape[0])
            parts = self._run_tasks(
                "reduce_partial",
                [a],
                (len(chunks), a.shape[1]),
                probe.dtype,
                (op, 0),
                self._partial_tasks(a.shape[0]),
            )
            return op.reduce(parts, axis=0)
        return self._serial.reduce(op, a, axis)

    def scan(self, op, a, axis):
        if self._too_small(a) or not (a.ndim == 2 and axis in (1, -1)):
            return self._serial.scan(op, a, axis)
        probe = np.asarray(op.scan(a[:1], axis=1))
        return self._run_tasks(
            "scan_rows", [a], a.shape, probe.dtype, op, self._row_tasks(a.shape[0])
        )

    def sort(self, a, axis):
        if self._too_small(a) or not (a.ndim == 2 and axis in (1, -1)):
            return self._serial.sort(a, axis)
        return self._run_tasks(
            "sort_rows", [a], a.shape, a.dtype, None, self._row_tasks(a.shape[0])
        )

    def argsort(self, a, axis):
        if self._too_small(a) or not (a.ndim == 2 and axis in (1, -1)):
            return self._serial.argsort(a, axis)
        return self._run_tasks(
            "argsort_rows", [a], a.shape, np.intp, None, self._row_tasks(a.shape[0])
        )

    def count_votes(self, labels, minlength):
        if not self._pool_worthy(labels.shape):
            return self._serial.count_votes(labels, minlength)
        chunks = self._row_chunks(labels.size)
        parts = self._run_tasks(
            "count_votes",
            [labels],
            (len(chunks), minlength),
            np.intp,
            int(minlength),
            self._partial_tasks(labels.size),
        )
        return np.sum(parts, axis=0)

    def segmented_reduce(self, op, values, indptr):
        n_seg = indptr.size - 1
        if (
            self._pool is None
            or n_seg < 2
            or values.size < self.grain * self.num_workers
        ):
            return self._serial.segmented_reduce(op, values, indptr)
        # Synthetic one-element probe pins the output dtype (the shared
        # segment is allocated before workers run); the kernel's
        # identity-append promotion rule is the same for every slice, so
        # the dtype matches what the serial kernel would produce.
        probe = _segmented_reduce_kernel(op, values[:1], np.array([0, 1], dtype=np.intp))
        return self._run_tasks(
            "segmented_reduce",
            [values, np.asarray(indptr, dtype=np.intp)],
            (n_seg,),
            probe.dtype,
            op,
            self._row_tasks(n_seg),
        )

    def fused_axpy(self, a, x, y, *, clamp_min=None, mask=None, fill=0.0):
        x = np.asarray(x)
        operands = [x] + [np.asarray(v) for v in (y, mask) if isinstance(v, np.ndarray)]
        shape = np.broadcast_shapes(*(v.shape for v in operands))
        if not self._pool_worthy(shape):
            return self._serial.fused_axpy(a, x, y, clamp_min=clamp_min, mask=mask, fill=fill)
        y_is_arr = isinstance(y, np.ndarray)
        mask_is_arr = isinstance(mask, np.ndarray)
        arrays = [x] + ([np.asarray(y)] if y_is_arr else []) + (
            [np.asarray(mask)] if mask_is_arr else []
        )
        probe = np.asarray(
            _axpy_kernel(
                a,
                np.broadcast_to(x, shape)[:1],
                np.broadcast_to(y, shape)[:1] if y_is_arr else y,
                clamp_min,
                np.broadcast_to(mask, shape)[:1] if mask_is_arr else mask,
                fill,
            )
        )
        payload = (
            tuple(shape),
            a,
            y_is_arr,
            None if y_is_arr else y,
            clamp_min,
            mask_is_arr,
            None if mask_is_arr else mask,
            fill,
        )
        return self._run_tasks(
            "fused_axpy", arrays, shape, probe.dtype, payload, self._row_tasks(shape[0])
        )


# -- registry & factory -----------------------------------------------------

#: Instance sizes (elements) below which ``make_backend("auto")`` keeps
#: the serial backend: pool dispatch has a much higher constant than the
#: frontier bookkeeping governed by ``AUTO_COMPACTION_MIN_SIZE``, so the
#: floor sits correspondingly higher.
AUTO_BACKEND_MIN_SIZE = 1 << 16


def _pool_kwargs(grain):
    return {} if grain is None else {"grain": int(grain)}


_BACKEND_REGISTRY: dict = {
    "serial": lambda num_workers, grain: SerialBackend(),
    "thread": lambda num_workers, grain: ThreadBackend(num_workers, **_pool_kwargs(grain)),
    "process": lambda num_workers, grain: ProcessBackend(num_workers, **_pool_kwargs(grain)),
}


def register_backend(name: str, factory) -> None:
    """Register a backend factory ``(num_workers, grain) -> Backend``.

    Extension hook for alternative substrates (e.g. an accelerator or a
    cluster shim); registered names become valid everywhere a backend
    name is accepted, including ``REPRO_BACKEND``.
    """
    if not name or name == "auto":
        raise InvalidParameterError(f"invalid backend name {name!r}")
    _BACKEND_REGISTRY[str(name)] = factory


def available_backends() -> list:
    """Sorted names accepted by :func:`make_backend` (besides ``"auto"``)."""
    return sorted(_BACKEND_REGISTRY)


def resolve_backend_name(name: str, size: int | None = None) -> str:
    """Resolve ``"auto"`` (and validate any other name) to a registry key.

    The ``"auto"`` policy mirrors
    :func:`repro.core.frontier.resolve_compaction`: serial below
    ``AUTO_BACKEND_MIN_SIZE`` elements (or when the host has a single
    CPU), thread-parallel otherwise. Threads, not processes, are the
    auto choice because NumPy kernels release the GIL — shared-memory
    processes only pay off for arithmetic heavy enough to beat a
    per-call copy, which is a measured, opt-in decision.
    """
    if name == "auto":
        if (os.cpu_count() or 1) < 2:
            return "serial"
        if size is not None and size < AUTO_BACKEND_MIN_SIZE:
            return "serial"
        return "thread"
    if name not in _BACKEND_REGISTRY:
        raise InvalidParameterError(
            f"unknown backend {name!r}; expected 'auto' or one of {available_backends()}"
        )
    return name


def make_backend(
    spec: "str | Backend" = "serial",
    *,
    num_workers: int | None = None,
    grain: int | None = None,
    size: int | None = None,
) -> Backend:
    """Construct a backend from a name (``Backend`` instances pass through).

    Parameters
    ----------
    spec:
        ``"serial"``, ``"thread"``, ``"process"``, ``"auto"`` (see
        :func:`resolve_backend_name`), any :func:`register_backend` name,
        or an existing :class:`Backend` (returned unchanged).
    num_workers / grain:
        Forwarded to pool backends; ``None`` keeps their defaults.
    size:
        Instance element count steering the ``"auto"`` policy.

    The caller owns the result: close it (or use it as a context
    manager) when a pool backend is no longer needed.
    """
    if isinstance(spec, Backend):
        return spec
    name = resolve_backend_name(spec, size)
    return _BACKEND_REGISTRY[name](num_workers, grain)


# -- shared (environment-default) backends ----------------------------------

_SHARED_BACKENDS: dict = {}


def _env_int(var: str) -> int | None:
    raw = os.environ.get(var, "").strip()
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError as exc:
        raise InvalidParameterError(f"{var} must be an integer, got {raw!r}") from exc


def shared_backend(spec: "str | Backend | None" = None, *, size: int | None = None) -> Backend:
    """Process-wide cached backend for machines built without one.

    ``spec=None`` reads ``REPRO_BACKEND`` (default ``"serial"``) —
    the hook the CI backend matrix uses to run the whole test suite on
    a different substrate. An empty or whitespace-only value counts as
    unset (CI matrices routinely materialize ``REPRO_BACKEND=""`` for
    the default leg), never as a backend literally named ``""``.
    ``REPRO_NUM_WORKERS`` and ``REPRO_GRAIN`` tune pool backends.
    Instances are cached per resolved configuration and shared by every
    :class:`PramMachine` that did not receive an explicit backend
    object, so a test run never stacks up worker pools; they are closed
    atexit, and ``PramMachine.close`` deliberately leaves them open.
    """
    if isinstance(spec, Backend):
        return spec
    name = spec if spec is not None else (
        os.environ.get("REPRO_BACKEND", "").strip() or "serial"
    )
    workers = _env_int("REPRO_NUM_WORKERS")
    grain = _env_int("REPRO_GRAIN")
    name = resolve_backend_name(name, size)
    key = (name, workers, grain)
    backend = _SHARED_BACKENDS.get(key)
    if backend is None or backend.closed:
        backend = make_backend(name, num_workers=workers, grain=grain)
        _SHARED_BACKENDS[key] = backend
    return backend


@atexit.register
def _close_shared_backends() -> None:
    """Close every cached shared backend, tolerating late registrations.

    Closing a pool can itself run drain/atexit-ordered hooks (a serving
    tier flushing its last jobs, a supervisor respawning) that call
    :func:`shared_backend` and register *new* entries — mutating the
    cache mid-iteration. Drain by snapshot: pop a batch, close it, and
    repeat until the cache stays empty. ``Backend.close`` is idempotent,
    so an entry already closed by its owner is a no-op, and a close that
    raises must not strand the remaining pools.

    Bounded: each pass only sees backends registered during the previous
    pass, and the pass cap turns a pathological close→register loop into
    a silent stop instead of a hang at interpreter exit.
    """
    for _ in range(8):
        if not _SHARED_BACKENDS:
            break
        for key in list(_SHARED_BACKENDS):
            backend = _SHARED_BACKENDS.pop(key, None)
            if backend is None:
                continue
            try:
                backend.close()
            except Exception:  # pragma: no cover - defensive at exit
                pass
