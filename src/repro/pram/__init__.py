"""Work–depth (PRAM) machine simulator — the paper's §2 cost model.

The paper expresses every algorithm as a polylogarithmic number of calls
to a small vocabulary of *basic matrix operations* (parallel loops over
vectors/matrices, transposition, row sorting, and summation / prefix
sums / distribution across rows or columns with ``min``/``max``/``add``
operators). On an EREW PRAM a basic operation on ``m`` elements costs
``O(m)`` work and ``O(log m)`` depth; sorting ``m`` elements costs
``O(m log m)`` work and ``O(log m)`` depth; in the parallel
cache-oblivious model the cache complexities are ``O(m/B)`` and
``O((m/B) log_{M/B} m)`` respectively.

:class:`PramMachine` executes those primitives with NumPy on a
swappable backend — serial, thread-parallel (NumPy ufuncs release the
GIL, so row-blocked threads are genuinely parallel), or
process-parallel over shared memory — while charging the model costs
to a :class:`CostLedger`; charges are backend-invariant, so all of the
paper's asymptotic claims (work bounds, round counts, polylog depth,
Brent speedup ``T_p = W/p + D``) become directly measurable
quantities on any substrate.
"""

from repro.pram.operators import ADD, AND, MAX, MIN, OR, AssociativeOp, get_operator
from repro.pram.ledger import CostLedger, CostSnapshot, RoundMark
from repro.pram.backends import (
    AUTO_BACKEND_MIN_SIZE,
    Backend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    available_backends,
    make_backend,
    register_backend,
    resolve_backend_name,
    shared_backend,
)
from repro.pram.machine import PramMachine, ensure_machine
from repro.pram.brent import brent_time, parallelism, speedup_curve

__all__ = [
    "AssociativeOp",
    "ADD",
    "MIN",
    "MAX",
    "OR",
    "AND",
    "get_operator",
    "CostLedger",
    "CostSnapshot",
    "RoundMark",
    "Backend",
    "SerialBackend",
    "ThreadBackend",
    "PramMachine",
    "ensure_machine",
    "ProcessBackend",
    "AUTO_BACKEND_MIN_SIZE",
    "available_backends",
    "make_backend",
    "register_backend",
    "resolve_backend_name",
    "shared_backend",
    "brent_time",
    "parallelism",
    "speedup_curve",
]
