"""Associative operators usable in reductions, scans, and distributions.

The paper (§2) requires summation and prefix sums "using a variety of
associative operators, including min, max, and addition". Each operator
bundles the NumPy ufunc with its identity element so reductions over
empty slices and exclusive scans are well defined.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidParameterError


@dataclass(frozen=True)
class AssociativeOp:
    """An associative binary operator with an identity element.

    Attributes
    ----------
    name:
        Stable identifier used in ledgers and error messages.
    ufunc:
        The NumPy universal function implementing the operator.
    identity:
        Two-sided identity element (the result of reducing an empty
        sequence).
    """

    name: str
    ufunc: np.ufunc
    identity: float | int | bool

    def reduce(self, a: np.ndarray, axis=None) -> np.ndarray:
        """Reduce ``a`` along ``axis`` (all axes when ``None``)."""
        if a.size == 0 and axis is None:
            return np.asarray(self.identity, dtype=a.dtype if a.dtype.kind != "b" else bool)
        return self.ufunc.reduce(a, axis=axis) if axis is not None else self.ufunc.reduce(a, axis=None)

    def scan(self, a: np.ndarray, axis: int = -1) -> np.ndarray:
        """Inclusive prefix combine of ``a`` along ``axis``."""
        return self.ufunc.accumulate(a, axis=axis)


ADD = AssociativeOp("add", np.add, 0)
MIN = AssociativeOp("min", np.minimum, np.inf)
MAX = AssociativeOp("max", np.maximum, -np.inf)
OR = AssociativeOp("or", np.logical_or, False)
AND = AssociativeOp("and", np.logical_and, True)

_REGISTRY: dict[str, AssociativeOp] = {op.name: op for op in (ADD, MIN, MAX, OR, AND)}


def get_operator(name: str) -> AssociativeOp:
    """Look up a registered operator by name (``add``/``min``/``max``/``or``/``and``)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise InvalidParameterError(
            f"unknown associative operator {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
