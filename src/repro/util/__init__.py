"""Shared utilities: RNG plumbing and argument validation."""

from repro.util.rng import ensure_rng, spawn_rngs
from repro.util.validation import (
    check_epsilon,
    check_k,
    check_nonnegative,
    check_positive_float,
    check_positive_int,
    check_probability,
    check_unit_fraction,
)

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "check_epsilon",
    "check_k",
    "check_nonnegative",
    "check_positive_float",
    "check_positive_int",
    "check_probability",
    "check_unit_fraction",
]
