"""Shared CSR (compressed sparse row) structure helpers.

The sparse subsystem stores every ragged facility→client structure as
three flat arrays — ``indptr`` (segment boundaries), ``indices``
(column ids), ``data`` (values) — the layout the paper's Lemma 3.1
remark assumes for ``O(|E| log |V|)`` execution. These helpers are the
single place that layout is validated and transformed; both
:mod:`repro.metrics.sparse` and :mod:`repro.core.dominator_sparse`
route through them so a malformed structure fails loudly in one
vocabulary.

Everything here is ``O(nnz)`` (the transpose is a counting sort) and
never round-trips through a coordinate or LIL representation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidInstanceError


def validate_csr(
    indptr,
    indices,
    n_cols: int,
    *,
    name: str = "csr",
    require_sorted: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """Validate a CSR index structure; return canonical intp arrays.

    Checks: ``indptr`` starts at 0, is non-decreasing, and ends at
    ``len(indices)``; every column index lies in ``[0, n_cols)``; no
    row contains a duplicate column. With ``require_sorted`` each row's
    column indices must additionally be strictly ascending (the
    canonical scipy layout).
    """
    indptr = np.asarray(indptr, dtype=np.intp)
    indices = np.asarray(indices, dtype=np.intp)
    if indptr.ndim != 1 or indices.ndim != 1:
        raise InvalidInstanceError(f"{name}: indptr and indices must be 1-D")
    if indptr.size == 0 or indptr[0] != 0:
        raise InvalidInstanceError(f"{name}: indptr must start at 0")
    if np.any(np.diff(indptr) < 0):
        raise InvalidInstanceError(f"{name}: indptr must be non-decreasing")
    if indptr[-1] != indices.size:
        raise InvalidInstanceError(
            f"{name}: indptr[-1]={int(indptr[-1])} != len(indices)={indices.size}"
        )
    if indices.size and (indices.min() < 0 or indices.max() >= n_cols):
        raise InvalidInstanceError(
            f"{name}: column index out of range [0, {n_cols}): "
            f"[{int(indices.min())}, {int(indices.max())}]"
        )
    if indices.size:
        if require_sorted:
            # A consecutive-pair decrease matters only within a row, i.e.
            # when the second entry of the pair does not start a new row.
            is_start = np.zeros(indices.size, dtype=bool)
            starts = indptr[:-1]
            is_start[starts[starts < indices.size]] = True
            if np.any((np.diff(indices) <= 0) & ~is_start[1:]):
                raise InvalidInstanceError(
                    f"{name}: row column indices must be strictly ascending"
                )
        else:
            # Duplicate check without assuming order: sort (row, col) pairs.
            rows = np.repeat(np.arange(indptr.size - 1), np.diff(indptr))
            order = np.lexsort((indices, rows))
            r, c = rows[order], indices[order]
            if np.any((np.diff(r) == 0) & (np.diff(c) == 0)):
                raise InvalidInstanceError(f"{name}: duplicate column within a row")
    return indptr, indices


def rows_are_uniform(indptr: np.ndarray) -> tuple[bool, int]:
    """Whether every segment has the same length; returns ``(flag, k)``.

    Uniform structures admit a rectangular fast path (reshape to a
    dense ``(rows, k)`` matrix) that is bit-identical to the dense
    kernels — the parity backbone of the sparse algorithm suite.
    """
    lens = np.diff(indptr)
    if lens.size == 0:
        return True, 0
    k = int(lens[0])
    return bool(np.all(lens == k)), k


def csr_transpose(
    indptr: np.ndarray, indices: np.ndarray, n_cols: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Counting-sort transpose of a CSR index structure.

    Returns ``(t_indptr, t_indices, entry)`` describing the same edge
    set grouped by column: ``t_indices`` holds the *row* id of each
    edge, and ``entry`` the position of that edge in the original flat
    arrays (so any per-edge payload transposes by ``payload[entry]``).
    Within each column, edges appear in ascending row order (the
    counting sort is stable over the row-major input). ``O(nnz)``.
    """
    indptr = np.asarray(indptr, dtype=np.intp)
    indices = np.asarray(indices, dtype=np.intp)
    counts = np.bincount(indices, minlength=n_cols)
    t_indptr = np.concatenate(([0], np.cumsum(counts))).astype(np.intp)
    rows = np.repeat(np.arange(indptr.size - 1), np.diff(indptr))
    # Stable sort by column preserves row-major order within each column.
    entry = np.argsort(indices, kind="stable").astype(np.intp)
    t_indices = rows[entry]
    return t_indptr, t_indices, entry


def csr_drop_diagonal(A):
    """Remove diagonal entries from a square scipy CSR matrix, in CSR.

    The previous implementation round-tripped through LIL
    (``A.tolil(); setdiag; tolil().tocsr()``), an ``O(n · nnz)`` format
    conversion on large graphs. This keeps the cleanup in CSR: one
    boolean mask over the flat index arrays and a bincount rebuild of
    ``indptr`` — ``O(nnz)``.
    """
    from scipy import sparse

    A = A.tocsr()
    n = A.shape[0]
    rows = np.repeat(np.arange(n), np.diff(A.indptr))
    keep = A.indices != rows
    if keep.all():
        return A
    new_counts = np.bincount(rows[keep], minlength=n)
    indptr = np.concatenate(([0], np.cumsum(new_counts)))
    return sparse.csr_matrix(
        (A.data[keep], A.indices[keep], indptr), shape=A.shape
    )
