"""Deterministic random-number-generator plumbing.

Every randomized component in the library accepts a ``seed`` argument
that may be ``None`` (fresh entropy), an integer, or an existing
:class:`numpy.random.Generator`. Centralizing the coercion here keeps
all algorithms reproducible under explicit seeds and prevents the
classic bug of mixing the legacy ``numpy.random.*`` global state with
the new Generator API.
"""

from __future__ import annotations

import numpy as np

SeedLike = "int | np.random.Generator | np.random.SeedSequence | None"


def ensure_rng(seed=None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an ``int`` or ``SeedSequence`` for a
        deterministic stream, or an existing ``Generator`` (returned
        unchanged so callers can thread one generator through a whole
        computation).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``seed``.

    Used when a computation fans out into independent randomized
    subcomputations (e.g., repeated trials in a benchmark) that must not
    share a stream, yet must be reproducible as a group.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of RNGs: {n}")
    if isinstance(seed, np.random.Generator):
        return [np.random.default_rng(s) for s in seed.bit_generator.seed_seq.spawn(n)]
    seq = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in seq.spawn(n)]
