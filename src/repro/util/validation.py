"""Argument validation helpers shared across the library.

These raise :class:`repro.errors.InvalidParameterError` with messages
that name the offending parameter, so every public entry point can
validate in one line.
"""

from __future__ import annotations

from repro.errors import InvalidParameterError


def check_epsilon(epsilon: float, *, name: str = "epsilon", upper: float | None = None) -> float:
    """Validate a slack parameter ``epsilon > 0`` (optionally ``<= upper``)."""
    eps = float(epsilon)
    if not eps > 0.0:
        raise InvalidParameterError(f"{name} must be > 0, got {epsilon!r}")
    if upper is not None and eps > upper:
        raise InvalidParameterError(f"{name} must be <= {upper}, got {epsilon!r}")
    return eps


def check_k(k: int, n: int, *, name: str = "k") -> int:
    """Validate a center-count ``1 <= k <= n``."""
    kk = int(k)
    if kk != k:
        raise InvalidParameterError(f"{name} must be an integer, got {k!r}")
    if not 1 <= kk <= n:
        raise InvalidParameterError(f"{name} must be in [1, {n}], got {k!r}")
    return kk


def check_positive_int(value: int, *, name: str) -> int:
    """Validate a strictly positive integer parameter."""
    v = int(value)
    if v != value or v <= 0:
        raise InvalidParameterError(f"{name} must be a positive integer, got {value!r}")
    return v


def check_probability(p: float, *, name: str = "p") -> float:
    """Validate a probability in the closed interval [0, 1]."""
    pp = float(p)
    if not 0.0 <= pp <= 1.0:
        raise InvalidParameterError(f"{name} must be in [0, 1], got {p!r}")
    return pp


def check_nonnegative(value: float, *, name: str) -> float:
    """Validate a finite float ``>= 0`` (delays, jitter fractions)."""
    v = float(value)
    if not v >= 0.0 or v != v or v == float("inf"):
        raise InvalidParameterError(f"{name} must be a finite float >= 0, got {value!r}")
    return v


def check_positive_float(value: float, *, name: str) -> float:
    """Validate a finite float ``> 0`` (timeouts, backoff bases)."""
    v = float(value)
    if not v > 0.0 or v == float("inf"):
        raise InvalidParameterError(f"{name} must be a finite float > 0, got {value!r}")
    return v


def check_unit_fraction(value: float, *, name: str) -> float:
    """Validate a fraction in the half-open interval ``(0, 1]``.

    The domain of coverage floors: 0 would accept an answer covering
    nothing, while exactly 1 ("only a complete answer") is legitimate.
    """
    v = float(value)
    if not 0.0 < v <= 1.0:
        raise InvalidParameterError(f"{name} must be in (0, 1], got {value!r}")
    return v
