"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class InvalidInstanceError(ReproError):
    """An instance violates a structural requirement.

    Examples: non-square distance matrix, negative distances or opening
    costs, triangle-inequality violation beyond tolerance, empty facility
    or client sets.
    """


class InvalidParameterError(ReproError):
    """An algorithm parameter is outside its documented domain.

    Examples: ``epsilon <= 0``, ``k <= 0`` or ``k > n``, a non-positive
    block size for the cache model.
    """


class ConvergenceError(ReproError):
    """An iterative algorithm exceeded its round/iteration safety bound.

    The parallel algorithms in the paper have high-probability round
    bounds; the implementations enforce a generous multiple of those
    bounds and raise this error rather than looping forever if the bound
    is breached (which would indicate a bug, not bad luck).
    """


class LPSolveError(ReproError):
    """The LP substrate failed to find an optimal solution.

    Raised when ``scipy.optimize.linprog`` reports anything other than
    successful convergence for the facility-location primal or dual.
    """


class InfeasibleSolutionError(ReproError):
    """A produced solution violates a verified invariant.

    Raised by checkers when, e.g., a dual solution is infeasible or a
    k-clustering opens more than ``k`` centers.
    """
