"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class InvalidInstanceError(ReproError):
    """An instance violates a structural requirement.

    Examples: non-square distance matrix, negative distances or opening
    costs, triangle-inequality violation beyond tolerance, empty facility
    or client sets.
    """


class InvalidParameterError(ReproError):
    """An algorithm parameter is outside its documented domain.

    Examples: ``epsilon <= 0``, ``k <= 0`` or ``k > n``, a non-positive
    block size for the cache model.
    """


class ConvergenceError(ReproError):
    """An iterative algorithm exceeded its round/iteration safety bound.

    The parallel algorithms in the paper have high-probability round
    bounds; the implementations enforce a generous multiple of those
    bounds and raise this error rather than looping forever if the bound
    is breached (which would indicate a bug, not bad luck).
    """


class LPSolveError(ReproError):
    """The LP substrate failed to find an optimal solution.

    Raised when ``scipy.optimize.linprog`` reports anything other than
    successful convergence for the facility-location primal or dual.
    """


class InfeasibleSolutionError(ReproError):
    """A produced solution violates a verified invariant.

    Raised by checkers when, e.g., a dual solution is infeasible or a
    k-clustering opens more than ``k`` centers.
    """


class ExecutionError(ReproError):
    """Base class for execution-layer (fault-tolerance) failures.

    Raised by the supervised execution path (:mod:`repro.faults`) when a
    task could not be completed — as opposed to the modelling errors
    above, which describe bad inputs or broken invariants. Concrete
    subclasses carry the original cause via ``__cause__`` chaining, so
    ``raise TaskTimeoutError(...) from exc`` preserves the full story.
    """


class WorkerCrashError(ExecutionError):
    """A worker died while (or before) executing a task.

    On a process pool this wraps ``BrokenProcessPool`` — the pool is
    unusable afterwards and the supervisor respawns it. On thread or
    serial execution it wraps an injected/simulated crash (threads
    cannot take the interpreter down without taking the suite with it).
    """


class TaskTimeoutError(ExecutionError):
    """A supervised task exceeded its :class:`~repro.faults.RetryPolicy`
    timeout.

    The task may still be running (neither a thread nor an already-
    started process-pool task can be preempted); the supervisor stops
    waiting, counts the attempt, and — on process pools — abandons and
    respawns the pool so a hung worker cannot wedge later rounds.
    """


class ShardFailedError(ExecutionError):
    """A shard's task exhausted its retry budget (or degradation was
    refused).

    Raised by :func:`repro.shard.shard_and_solve` when
    ``on_shard_failure`` is ``"raise"``/``"retry"`` and a shard still
    fails after all permitted attempts, or when ``"drop"`` would push
    the covered weight below the configured coverage floor. The first
    underlying :class:`~repro.faults.TaskFailure`'s error is chained as
    ``__cause__``.
    """
