"""Setuptools shim.

Kept alongside pyproject.toml so the package installs in offline
environments whose setuptools predates native wheel building (legacy
``setup.py develop`` path). All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
