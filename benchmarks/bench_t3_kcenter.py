"""T3 — Theorem 6.1: parallel k-center in O((n log n)²) work.

Paper claims: 2-approximation, improving Wang–Cheng's O(n³)-work
parallel algorithm. Measured: ratio vs exact bottleneck optima; ledger
work vs the Wang–Cheng proxy's modelled work across an n sweep (the
headline comparison: near-quadratic vs cubic growth).
"""

import numpy as np

from repro.analysis.scaling import fit_work_exponent
from repro.baselines.brute_force import brute_force_kcenter
from repro.baselines.gonzalez import gonzalez_kcenter
from repro.baselines.wang_cheng import wang_cheng_kcenter
from repro.bench.harness import ExperimentTable
from repro.bench.workloads import clustering_ratio_suite, clustering_scaling_suite
from repro.core.kcenter import parallel_kcenter
from repro.pram.machine import PramMachine


def test_t3_quality_vs_opt(benchmark, medium_clustering):
    table = ExperimentTable("T3a", "k-center vs exact optimum (claim: ≤ 2)")
    for name, inst in clustering_ratio_suite():
        opt, _ = brute_force_kcenter(inst, max_subsets=500_000)
        ratios = [parallel_kcenter(inst, seed=s).cost / opt for s in range(3)]
        gz = inst.kcenter_cost(gonzalez_kcenter(inst)) / opt
        table.add(
            instance=name,
            opt=opt,
            parallel_worst=max(ratios),
            parallel_mean=float(np.mean(ratios)),
            gonzalez=gz,
        )
        assert max(ratios) <= 2 * (1 + 1e-9)
    table.emit()

    benchmark(lambda: parallel_kcenter(medium_clustering, seed=0).cost)


def test_t3_work_vs_wang_cheng(benchmark):
    """The improvement the paper states: our work grows ~n² polylog,
    the prior algorithm's ~n³; the gap must widen with n."""
    table = ExperimentTable("T3b", "k-center work: this paper vs Wang–Cheng proxy")
    ns, ours, theirs = [], [], []
    for name, inst in clustering_scaling_suite(sizes=(40, 60, 90, 135), k=4):
        m = PramMachine(seed=0)
        parallel_kcenter(inst, machine=m)
        wc = wang_cheng_kcenter(inst)
        ns.append(inst.n)
        ours.append(m.ledger.work)
        theirs.append(wc.work)
        table.add(
            n=inst.n,
            paper_work=m.ledger.work,
            wang_cheng_work=wc.work,
            advantage=wc.work / m.ledger.work,
        )
    table.emit()
    # claim shape: advantage grows with n
    adv = np.asarray(theirs) / np.asarray(ours)
    assert adv[-1] > adv[0] * 0.9  # non-shrinking advantage, noise-tolerant
    ours_fit = fit_work_exponent(np.square(ns), ours, log_power=2.0)
    # O((n log n)²) = O(m · log² ) in m = n²: exponent ≈ 1 in n².
    assert 0.7 <= ours_fit.exponent <= 1.35

    small = clustering_scaling_suite(sizes=(60,), k=4)[0][1]
    benchmark(lambda: wang_cheng_kcenter(small).work)
