"""T6 — Lemma 3.1: dominator sets in O(n² log n) work, O(log² n) depth.

Measured: Luby round counts vs the O(log n) envelope across sizes and
densities; ledger work vs the n²·rounds model; timed select-step kernel.
"""

import numpy as np

from repro.analysis.scaling import fit_work_exponent
from repro.bench.harness import ExperimentTable
from repro.core.dominator import expected_round_bound, max_dominator_set, max_u_dominator_set
from repro.pram.machine import PramMachine


def random_graph(n, p, seed):
    rng = np.random.default_rng(seed)
    A = np.triu(rng.random((n, n)) < p, 1)
    return A | A.T


def test_t6_maxdom_rounds_and_work(benchmark):
    table = ExperimentTable("T6a", "MaxDom rounds vs O(log n); work vs O(n² log n)")
    ns, works = [], []
    for n in (32, 64, 128, 256):
        rounds_seen = []
        work_seen = []
        for seed in range(3):
            A = random_graph(n, 8.0 / n, seed)  # constant average degree
            m = PramMachine(seed=seed)
            max_dominator_set(A, m)
            rounds_seen.append(m.ledger.rounds["maxdom"])
            work_seen.append(m.ledger.work)
        table.add(
            n=n,
            rounds_mean=float(np.mean(rounds_seen)),
            rounds_max=max(rounds_seen),
            bound=expected_round_bound(n),
            work_mean=float(np.mean(work_seen)),
        )
        assert max(rounds_seen) <= expected_round_bound(n)
        ns.append(n)
        works.append(float(np.mean(work_seen)))
    table.emit()
    fit = fit_work_exponent(ns, works, log_power=1.0)
    assert 1.5 <= fit.exponent <= 2.5  # ~ n² after removing the log

    A = random_graph(128, 8.0 / 128, 0)
    benchmark(lambda: max_dominator_set(A, PramMachine(seed=0)).sum())


def test_t6_maxudom_rounds(benchmark):
    table = ExperimentTable("T6b", "MaxUDom rounds vs O(log n)")
    for nu, nv in ((40, 30), (80, 60), (160, 120)):
        rounds_seen = []
        for seed in range(3):
            rng = np.random.default_rng(seed)
            B = rng.random((nu, nv)) < 4.0 / nv
            m = PramMachine(seed=seed)
            max_u_dominator_set(B, m)
            rounds_seen.append(m.ledger.rounds["maxudom"])
        table.add(U=nu, V=nv, rounds_max=max(rounds_seen), bound=expected_round_bound(nu))
        assert max(rounds_seen) <= expected_round_bound(nu)
    table.emit()

    rng = np.random.default_rng(0)
    B = rng.random((80, 60)) < 4.0 / 60
    benchmark(lambda: max_u_dominator_set(B, PramMachine(seed=0)).sum())
