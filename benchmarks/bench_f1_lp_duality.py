"""F1 — Figure 1: the primal/dual LP pair.

Reproduces the paper's one figure computationally: constructs both
programs for a suite of instances, solves them, and verifies weak and
strong duality (equal optimal values, feasible solutions on both
sides). The timed kernel is the primal solve.
"""

import pytest

from repro.bench.harness import ExperimentTable
from repro.bench.workloads import fl_lp_suite, fl_ratio_suite
from repro.lp.duality import check_dual_feasible, check_primal_feasible, duality_gap
from repro.lp.solve import solve_dual, solve_primal


def test_f1_duality_table(benchmark, medium_instance):
    table = ExperimentTable("F1", "Figure 1 LP pair: strong duality on every workload")
    for name, inst in fl_ratio_suite() + fl_lp_suite():
        p = solve_primal(inst)
        d = solve_dual(inst)
        check_primal_feasible(inst, p.x, p.y)
        check_dual_feasible(inst, d.alpha, d.beta)
        gap = duality_gap(p.value, d.value)
        assert gap < 1e-6, f"strong duality violated on {name}"
        table.add(
            instance=name,
            m=inst.m,
            primal=p.value,
            dual=d.value,
            gap=gap,
            frac_open=float((p.y > 1e-9).sum()),
        )
    table.emit()

    benchmark(lambda: solve_primal(medium_instance).value)


def test_f1_dual_solve_speed(benchmark, medium_instance):
    value = benchmark(lambda: solve_dual(medium_instance).value)
    assert value == pytest.approx(solve_primal(medium_instance).value, rel=1e-6)
