"""T2 — Theorem 5.4: parallel primal–dual facility location.

Paper claims: (3+ε)-approximation in O(m log_{1+ε} m) work — work
efficient vs the sequential O(m log m) Jain–Vazirani. Measured: ratio
vs exact optima and LP bounds, Claim 5.1 dual feasibility, the Eq. (5)
LMP inequality, and iteration counts vs the 3·log_{1+ε} m bound.
"""

import math

import numpy as np

from repro.baselines.brute_force import brute_force_facility_location
from repro.baselines.jv_sequential import jv_sequential
from repro.bench.harness import ExperimentTable
from repro.bench.workloads import fl_lp_suite, fl_ratio_suite
from repro.core.primal_dual import parallel_primal_dual
from repro.lp.duality import check_dual_feasible
from repro.lp.solve import lp_lower_bound

EPS = 0.1


def test_t2_quality_vs_opt(benchmark, medium_instance):
    table = ExperimentTable("T2a", "primal–dual vs exact optimum (claim: ≤ 3+ε)")
    for name, inst in fl_ratio_suite():
        opt, _ = brute_force_facility_location(inst)
        ratios = [
            parallel_primal_dual(inst, epsilon=EPS, seed=s).cost / opt for s in range(3)
        ]
        seq = jv_sequential(inst).cost / opt
        table.add(
            instance=name,
            opt=opt,
            parallel_worst=max(ratios),
            parallel_mean=float(np.mean(ratios)),
            sequential_jv=seq,
        )
        assert max(ratios) <= (3 + EPS) * (1 + 1e-9) + 3.0 / inst.m
    table.emit()

    benchmark(lambda: parallel_primal_dual(medium_instance, epsilon=EPS, seed=0).cost)


def test_t2_dual_feasibility_and_lmp(benchmark, medium_instance):
    """Claim 5.1 + Eq. (5) on every workload (exact, not sampled)."""
    table = ExperimentTable("T2b", "primal–dual duals: feasibility + LMP inequality")
    for name, inst in fl_ratio_suite() + fl_lp_suite():
        sol = parallel_primal_dual(inst, epsilon=EPS, seed=1)
        check_dual_feasible(inst, sol.alpha, tol=1e-7)
        lp = lp_lower_bound(inst)
        lmp_lhs = 3 * sol.facility_cost + sol.connection_cost
        lmp_rhs = 3 * sol.extra["gamma"] / inst.m + 3 * (1 + EPS) * sol.alpha.sum()
        assert sol.alpha.sum() <= lp * (1 + 1e-7)
        assert lmp_lhs <= lmp_rhs * (1 + 1e-9)
        table.add(
            instance=name,
            dual_value=float(sol.alpha.sum()),
            lp_opt=lp,
            dual_over_lp=float(sol.alpha.sum()) / lp if lp > 0 else 1.0,
            lmp_lhs=lmp_lhs,
            lmp_rhs=lmp_rhs,
        )
    table.emit()

    benchmark(lambda: parallel_primal_dual(medium_instance, epsilon=EPS, seed=1).alpha.sum())


def test_t2_iterations_vs_bound(benchmark, medium_instance):
    table = ExperimentTable("T2c", "primal–dual iterations vs 3·log_{1+ε} m bound")
    for name, inst in fl_lp_suite():
        sol = parallel_primal_dual(inst, epsilon=EPS, seed=2)
        bound = 3 * math.log(inst.m) / math.log1p(EPS) + 8
        table.add(
            instance=name,
            m=inst.m,
            iterations=sol.rounds["pd_iterations"],
            bound=bound,
            utilization=sol.rounds["pd_iterations"] / bound,
        )
        assert sol.rounds["pd_iterations"] <= bound
    table.emit()

    benchmark(
        lambda: parallel_primal_dual(medium_instance, epsilon=EPS, seed=2).rounds["pd_iterations"]
    )
