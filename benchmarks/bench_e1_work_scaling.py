"""E1 — §1.1 work-efficiency table: fitted work exponents.

The paper's claims, in m = n_f·n_c (facility location) or n (clustering):

  greedy        O(m log²_{1+ε} m)   → exponent 1 in m (log² divided out)
  primal–dual   O(m log_{1+ε} m)    → exponent 1 in m (log divided out)
  k-center      O((n log n)²)        → exponent 1 in n² (log² divided out)
  LP rounding   O(m log m log_{1+ε} m) → exponent 1 in m
  local search  O(k²(n−k)n log n)    → exponent ~2 in n at fixed k

Measured on geometric size sweeps from the PRAM ledger; fitted
log–log slopes must land within ±0.35 of the claim (small sweeps keep
wide tolerance; EXPERIMENTS.md records the exact numbers).
"""

import numpy as np

from repro.analysis.scaling import fit_work_exponent
from repro.bench.harness import ExperimentTable
from repro.bench.workloads import clustering_scaling_suite, fl_scaling_suite
from repro.core.greedy import parallel_greedy
from repro.core.kcenter import parallel_kcenter
from repro.core.local_search import parallel_kmedian
from repro.core.lp_rounding import parallel_lp_rounding
from repro.core.primal_dual import parallel_primal_dual
from repro.lp.solve import solve_primal
from repro.pram.machine import PramMachine

EPS = 0.2


def _ledger_work(fn, inst, seed=0):
    m = PramMachine(seed=seed)
    fn(inst, m)
    return m.ledger.work


def test_e1_fl_algorithms(benchmark):
    table = ExperimentTable("E1a", "work exponents: facility-location algorithms (claim: 1.0 in m)")
    suite = fl_scaling_suite()
    ms = [inst.m for _, inst in suite]

    runs = {
        "greedy (log² removed)": (
            lambda inst, m: parallel_greedy(inst, epsilon=EPS, machine=m),
            2.0,
        ),
        "primal-dual (log removed)": (
            lambda inst, m: parallel_primal_dual(inst, epsilon=EPS, machine=m),
            1.0,
        ),
        "lp-rounding (log² removed)": (
            lambda inst, m: parallel_lp_rounding(
                inst, solve_primal(inst), epsilon=EPS, machine=m
            ),
            2.0,
        ),
    }
    for name, (fn, logpow) in runs.items():
        works = [_ledger_work(fn, inst) for _, inst in suite]
        fit = fit_work_exponent(ms, works, log_power=logpow)
        table.add(algorithm=name, exponent=fit.exponent, claim=1.0,
                  work_small=works[0], work_large=works[-1])
        assert 0.65 <= fit.exponent <= 1.35, name
    table.emit()

    inst = suite[1][1]
    benchmark(lambda: _ledger_work(runs["primal-dual (log removed)"][0], inst))


def test_e1_clustering_algorithms(benchmark):
    table = ExperimentTable("E1b", "work exponents: clustering algorithms")
    suite = clustering_scaling_suite(sizes=(40, 60, 90, 135, 200), k=5)
    ns = [inst.n for _, inst in suite]

    kc_works = [_ledger_work(lambda i, m: parallel_kcenter(i, machine=m), inst) for _, inst in suite]
    kc_fit = fit_work_exponent(np.square(ns), kc_works, log_power=2.0)
    table.add(algorithm="k-center (in n², log² removed)", exponent=kc_fit.exponent, claim=1.0)
    assert 0.65 <= kc_fit.exponent <= 1.35

    ls_works = [
        _ledger_work(lambda i, m: parallel_kmedian(i, epsilon=0.3, machine=m), inst)
        for _, inst in suite
    ]
    ls_fit = fit_work_exponent(ns, ls_works, log_power=1.0)
    table.add(algorithm="k-median local search (in n, log removed)", exponent=ls_fit.exponent, claim=2.0)
    assert 1.5 <= ls_fit.exponent <= 2.7
    table.emit()

    inst = suite[0][1]
    benchmark(lambda: _ledger_work(lambda i, m: parallel_kcenter(i, machine=m), inst))
