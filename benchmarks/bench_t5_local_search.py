"""T5 — Theorem 7.1: parallel local search for k-median / k-means.

Paper claims: (5+ε) for k-median, (81+ε) for k-means, in
O(k²(n−k)n log_{1+ε} n) work for k ∈ polylog(n). Measured: ratios vs
exact optima and the k-median LP, swap-round counts vs the Arya bound.
"""

import math

import numpy as np

from repro.baselines.brute_force import brute_force_kmeans, brute_force_kmedian
from repro.baselines.local_search_seq import local_search_kmedian_seq
from repro.bench.harness import ExperimentTable
from repro.bench.workloads import clustering_ratio_suite, clustering_scaling_suite
from repro.core.local_search import parallel_kmeans, parallel_kmedian
from repro.lp.solve import solve_kmedian_lp

EPS = 0.3


def test_t5_kmedian_quality(benchmark, medium_clustering):
    table = ExperimentTable("T5a", "k-median local search vs optimum (claim: ≤ 5+ε)")
    for name, inst in clustering_ratio_suite():
        opt, _ = brute_force_kmedian(inst, max_subsets=500_000)
        ratios = [parallel_kmedian(inst, epsilon=EPS, seed=s).cost / opt for s in range(3)]
        seq = local_search_kmedian_seq(inst, epsilon=EPS).cost / opt
        table.add(
            instance=name,
            opt=opt,
            parallel_worst=max(ratios),
            parallel_mean=float(np.mean(ratios)),
            sequential=seq,
        )
        assert max(ratios) <= (5 + EPS) * (1 + 1e-9)
    table.emit()

    benchmark(lambda: parallel_kmedian(medium_clustering, epsilon=EPS, seed=0).cost)


def test_t5_kmeans_quality(benchmark, medium_clustering):
    table = ExperimentTable("T5b", "k-means local search vs optimum (claim: ≤ 81+ε)")
    for name, inst in clustering_ratio_suite():
        opt, _ = brute_force_kmeans(inst, max_subsets=500_000)
        ratio = parallel_kmeans(inst, epsilon=EPS, seed=0).cost / opt
        table.add(instance=name, opt=opt, ratio=ratio)
        assert ratio <= (81 + EPS) * (1 + 1e-9)
    table.emit()

    benchmark(lambda: parallel_kmeans(medium_clustering, epsilon=EPS, seed=0).cost)


def test_t5_rounds_vs_lp_bound(benchmark, medium_clustering):
    """Swap rounds against the O(k/β · log(start/opt)) bound, with the
    k-median LP as the opt proxy on larger instances."""
    table = ExperimentTable("T5c", "local-search swap rounds vs bound")
    beta = EPS / (1 + EPS)
    for name, inst in clustering_scaling_suite(sizes=(40, 60, 90), k=4):
        sol = parallel_kmedian(inst, epsilon=EPS, seed=1)
        lp = solve_kmedian_lp(inst)
        start = sol.extra["initial_cost"]
        bound = (
            math.log(max(start / max(lp, 1e-12), 2.0)) / -math.log1p(-beta / inst.k) + 1
        )
        table.add(
            n=inst.n,
            swaps=len(sol.extra["swaps"]),
            bound=bound,
            start_over_lp=start / max(lp, 1e-12),
            final_over_lp=sol.cost / max(lp, 1e-12),
        )
        assert len(sol.extra["swaps"]) <= bound
    table.emit()

    benchmark(lambda: parallel_kmedian(medium_clustering, epsilon=EPS, seed=1).cost)
