"""T1 — Theorem 4.9: parallel greedy facility location.

Paper claims: (3.722+ε)-approximation (factor-revealing LP; the
self-contained proof gives 6+ε) in O(m log²_{1+ε} m) work. Measured:
worst-case ratio against exact optima (small suite) and LP lower bounds
(medium suite); dual-fitting slack (Lemma 4.6/4.7); timed kernel.
"""

import numpy as np

from repro.baselines.brute_force import brute_force_facility_location
from repro.baselines.greedy_jms import greedy_jms
from repro.bench.harness import ExperimentTable
from repro.bench.workloads import fl_lp_suite, fl_ratio_suite
from repro.core.greedy import parallel_greedy
from repro.lp.duality import dual_fitting_slack
from repro.lp.solve import lp_lower_bound

EPS = 0.1


def test_t1_quality_vs_opt(benchmark, medium_instance):
    table = ExperimentTable(
        "T1a", "greedy vs exact optimum (claim: ≤ 3.722+ε; proven 6+ε)"
    )
    worst = 0.0
    for name, inst in fl_ratio_suite():
        opt, _ = brute_force_facility_location(inst)
        ratios = [
            parallel_greedy(inst, epsilon=EPS, seed=s).cost / opt for s in range(3)
        ]
        seq = greedy_jms(inst).cost / opt
        worst = max(worst, max(ratios))
        table.add(
            instance=name,
            opt=opt,
            parallel_worst=max(ratios),
            parallel_mean=float(np.mean(ratios)),
            sequential_jms=seq,
        )
    table.emit()
    assert worst <= 3.722 + EPS

    benchmark(lambda: parallel_greedy(medium_instance, epsilon=EPS, seed=0).cost)


def test_t1_quality_vs_lp(benchmark, medium_instance):
    table = ExperimentTable("T1b", "greedy vs LP lower bound (medium instances)")
    for name, inst in fl_lp_suite():
        lp = lp_lower_bound(inst)
        sol = parallel_greedy(inst, epsilon=EPS, seed=1)
        table.add(instance=name, m=inst.m, lp=lp, ratio_vs_lp=sol.cost / lp,
                  outer_rounds=sol.rounds["greedy_outer"])
        assert sol.cost <= (6 + EPS) * lp * (1 + 1e-9)
    table.emit()

    benchmark(lambda: parallel_greedy(medium_instance, epsilon=EPS, seed=1).cost)


def test_t1_dual_fitting_slack(benchmark):
    """Lemma 4.6: α shrinks into feasibility within γ = 1.861."""
    table = ExperimentTable("T1c", "greedy dual-fitting slack (claim: ≤ 1.861)")
    for name, inst in fl_ratio_suite():
        sol = parallel_greedy(inst, epsilon=EPS, seed=2, preprocess=False)
        slack = dual_fitting_slack(inst, sol.alpha)
        table.add(instance=name, slack=slack)
        assert slack <= 1.861 * (1 + 1e-6)
    table.emit()

    inst = fl_ratio_suite()[0][1]
    benchmark(lambda: parallel_greedy(inst, epsilon=EPS, seed=0, preprocess=False).cost)
