"""X1 — the paper's sketched extensions, measured.

Three things the paper mentions but does not develop:

1. §7 remark: local search for facility location ("we do not know how
   to bound the number of rounds") — measure its quality AND its
   empirical round counts, the open quantity.
2. Lemma 3.1 remark: O(|E| log |V|)-work sparse dominator sets —
   measure the work separation from the dense variant on
   bounded-degree graphs.
3. §5's LMP property "enabling … k-median" — run the Jain–Vazirani
   Lagrangian pipeline on the parallel LMP subroutine and measure its
   quality against exact optima.
"""

import numpy as np
from scipy import sparse

from repro.baselines.brute_force import brute_force_facility_location, brute_force_kmedian
from repro.bench.harness import ExperimentTable
from repro.bench.workloads import clustering_ratio_suite, fl_ratio_suite
from repro.core.dominator import max_dominator_set
from repro.core.dominator_sparse import max_dominator_set_sparse
from repro.core.fl_local_search import parallel_fl_local_search
from repro.core.kmedian_lagrangian import parallel_kmedian_lagrangian
from repro.pram.machine import PramMachine


def test_x1_fl_local_search(benchmark, medium_instance):
    table = ExperimentTable(
        "X1a", "FL local search (§7 remark): quality ≤ 3+ε; rounds = open question"
    )
    for name, inst in fl_ratio_suite():
        opt, _ = brute_force_facility_location(inst)
        sol = parallel_fl_local_search(inst, epsilon=0.1, seed=0)
        assert sol.extra["converged"]
        assert sol.cost <= (3 + 0.1) * opt * (1 + 1e-9)
        table.add(
            instance=name,
            ratio=sol.cost / opt,
            rounds=sol.rounds["fl_local_search"],
            moves=len(sol.extra["moves"]),
        )
    table.emit()

    benchmark(lambda: parallel_fl_local_search(medium_instance, epsilon=0.1, seed=0).cost)


def test_x1_sparse_dominator_work(benchmark):
    table = ExperimentTable(
        "X1b", "sparse MaxDom (Lemma 3.1 remark): work O(|E| log n) vs dense O(n² log n)"
    )
    for n in (128, 256, 512):
        rng = np.random.default_rng(n)
        A = np.triu(rng.random((n, n)) < 6.0 / n, 1)
        A = A | A.T
        md = PramMachine(seed=1)
        dense_sel = max_dominator_set(A, md)
        ms = PramMachine(seed=1)
        sparse_sel = max_dominator_set_sparse(sparse.csr_matrix(A), ms)
        assert np.array_equal(dense_sel, sparse_sel)
        table.add(
            n=n,
            edges=int(A.sum() // 2),
            dense_work=md.ledger.work,
            sparse_work=ms.ledger.work,
            separation=md.ledger.work / ms.ledger.work,
        )
        assert ms.ledger.work < md.ledger.work / 5
    table.emit()

    A512 = np.triu(np.random.default_rng(0).random((512, 512)) < 6.0 / 512, 1)
    A512 = sparse.csr_matrix(A512 | A512.T)
    benchmark(lambda: max_dominator_set_sparse(A512, PramMachine(seed=0)).sum())


def test_x1_lagrangian_kmedian(benchmark, medium_clustering):
    table = ExperimentTable(
        "X1c", "Lagrangian k-median on the §5 LMP subroutine (JV pipeline)"
    )
    for name, inst in clustering_ratio_suite():
        opt, _ = brute_force_kmedian(inst, max_subsets=500_000)
        sol = parallel_kmedian_lagrangian(inst, epsilon=0.1, seed=0)
        assert sol.centers.size <= inst.k
        assert sol.cost <= 6.0 * opt * (1 + 1e-9)
        table.add(
            instance=name,
            ratio=sol.cost / opt,
            centers=sol.centers.size,
            k=inst.k,
            probes=len(sol.extra["probes"]),
        )
    table.emit()

    benchmark(
        lambda: parallel_kmedian_lagrangian(
            medium_clustering, epsilon=0.2, seed=0, max_probes=12
        ).cost
    )
