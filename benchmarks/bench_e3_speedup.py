"""E3 — parallelism: Brent speedup curves and real GIL-free threading.

Two measurements of the RNC claim:

1. *Model level* — W/D parallelism and the Brent speedup curve
   ``T₁/T_p`` per algorithm from ledger totals (the paper's claim).
2. *Metal level* — wall-clock speedup of the primitive layer under the
   thread backend (NumPy kernels release the GIL), demonstrating the
   substitution argument in DESIGN.md on this machine's cores.
"""

import os

import numpy as np

from repro.bench.harness import ExperimentTable
from repro.core.greedy import parallel_greedy
from repro.core.kcenter import parallel_kcenter
from repro.core.primal_dual import parallel_primal_dual
from repro.metrics.generators import euclidean_clustering, euclidean_instance
from repro.pram.backends import SerialBackend, ThreadBackend
from repro.pram.brent import parallelism, speedup_curve
from repro.pram.machine import PramMachine


def test_e3_brent_curves(benchmark):
    table = ExperimentTable("E3a", "model parallelism W/D and Brent speedups")
    inst = euclidean_instance(20, 160, seed=0)
    cl = euclidean_clustering(90, 5, seed=0)
    runs = {
        "greedy": lambda: parallel_greedy(inst, epsilon=0.2, seed=0).model_costs,
        "primal-dual": lambda: parallel_primal_dual(inst, epsilon=0.2, seed=0).model_costs,
        "k-center": lambda: parallel_kcenter(cl, seed=0).model_costs,
    }
    for name, fn in runs.items():
        costs = fn()
        curve = dict(speedup_curve(costs, [1, 16, 256, 4096]))
        table.add(
            algorithm=name,
            work=costs.work,
            depth=costs.depth,
            parallelism=parallelism(costs),
            speedup_p16=curve[16],
            speedup_p256=curve[256],
            speedup_p4096=curve[4096],
        )
        assert parallelism(costs) > 16  # far more parallelism than cores
        assert curve[16] > 8  # near-linear at small p
    table.emit()

    benchmark(lambda: runs["primal-dual"]().work)


def _row_reduce_workload(backend, data):
    m = PramMachine(backend=backend)
    total = 0.0
    for _ in range(4):
        total += float(m.reduce(data, "add", axis=1).sum())
        total += float(m.reduce(np.sqrt(data), "min", axis=1).sum())
    return total


def test_e3_thread_backend_wall_clock(benchmark):
    """Wall-clock check that threads help on large primitives (NumPy
    releases the GIL). On a 2-core box expect modest but real gains;
    we assert 'not slower than 0.8× serial' to stay robust on loaded
    CI machines, and record the actual ratio in the table."""
    import time

    rng = np.random.default_rng(0)
    data = rng.random((4096, 2048))
    serial = SerialBackend()
    threads = ThreadBackend(os.cpu_count() or 2, grain=1 << 12)

    def timed(fn, reps=3):
        best = np.inf
        for _ in range(reps):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    t_serial = timed(lambda: _row_reduce_workload(serial, data))
    t_thread = timed(lambda: _row_reduce_workload(threads, data))
    table = ExperimentTable("E3b", "thread-backend wall clock on primitives")
    table.add(
        cores=os.cpu_count(),
        serial_s=t_serial,
        thread_s=t_thread,
        speedup=t_serial / t_thread,
    )
    table.emit()
    threads.close()
    assert t_thread < t_serial / 0.8  # no worse than 25% slowdown, usually faster

    benchmark(lambda: _row_reduce_workload(serial, data))
