"""Shared benchmark fixtures.

Benchmarks print their experiment tables (captured in bench logs and
transcribed into EXPERIMENTS.md) and time the algorithm kernels with
pytest-benchmark. Claim assertions run alongside so a regression in
either speed *or* quality fails the bench suite.
"""

import pytest

from repro.metrics.generators import euclidean_clustering, euclidean_instance


@pytest.fixture(scope="session")
def medium_instance():
    """The standard timing instance: m = 20×80 = 1600."""
    return euclidean_instance(20, 80, seed=100)


@pytest.fixture(scope="session")
def medium_clustering():
    return euclidean_clustering(80, 5, seed=100)
