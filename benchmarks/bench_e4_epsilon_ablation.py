"""E4 — ablation of the (1+ε) slack, the paper's central design idea.

"Instead of picking only the most cost-effective element, make room
for parallelism by allowing a small slack" — the tradeoff is: larger ε
⇒ fewer rounds (more parallel progress per round) but looser tracking
of the sequential algorithm (worse constant). This bench sweeps ε for
the greedy and primal–dual algorithms against a fixed LP reference.
"""

import numpy as np

from repro.bench.harness import ExperimentTable
from repro.bench.workloads import epsilon_sweep
from repro.core.greedy import parallel_greedy
from repro.core.primal_dual import parallel_primal_dual
from repro.lp.solve import lp_lower_bound
from repro.metrics.generators import clustered_instance


def test_e4_epsilon_tradeoff(benchmark):
    inst = clustered_instance(16, 100, n_clusters=5, seed=42)
    lp = lp_lower_bound(inst)
    table = ExperimentTable("E4", "ε ablation: cost ratio vs rounds (m=1600)")
    rows = []
    for eps in epsilon_sweep():
        g_costs, g_rounds = [], []
        pd_costs, pd_rounds = [], []
        for seed in range(3):
            g = parallel_greedy(inst, epsilon=float(eps), seed=seed)
            pd = parallel_primal_dual(inst, epsilon=float(eps), seed=seed)
            g_costs.append(g.cost)
            g_rounds.append(g.rounds["greedy_outer"] + g.rounds["greedy_subselect"])
            pd_costs.append(pd.cost)
            pd_rounds.append(pd.rounds["pd_iterations"])
        row = dict(
            epsilon=float(eps),
            greedy_ratio=float(np.mean(g_costs)) / lp,
            greedy_rounds=float(np.mean(g_rounds)),
            pd_ratio=float(np.mean(pd_costs)) / lp,
            pd_rounds=float(np.mean(pd_rounds)),
        )
        rows.append(row)
        table.add(**row)
    table.emit()

    # Shape assertions: rounds decrease monotonically in ε for the
    # geometric primal–dual schedule; quality never exceeds the proven
    # factor at any ε.
    pd_rounds_series = [r["pd_rounds"] for r in rows]
    assert all(a >= b for a, b in zip(pd_rounds_series, pd_rounds_series[1:]))
    assert all(r["pd_ratio"] <= 3 * (1 + r["epsilon"]) + 0.1 for r in rows)
    assert all(r["greedy_ratio"] <= 6 + r["epsilon"] for r in rows)
    # The extremes differ substantially: ε=0.02 uses far more rounds
    # than ε=1.0.
    assert pd_rounds_series[0] > 5 * pd_rounds_series[-1]

    benchmark(lambda: parallel_primal_dual(inst, epsilon=0.2, seed=0).cost)
