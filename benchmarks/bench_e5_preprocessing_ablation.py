"""E5 — ablation of the γ/m² preprocessing steps (§4, §5).

The paper argues preprocessing (a) bounds rounds polylogarithmically
and (b) costs at most opt/m extra (greedy) / keeps the duals feasible
(primal–dual). This bench toggles preprocessing and measures all
three effects, including on the two-scale adversarial workload whose
distance spread is exactly what preprocessing guards against.
"""

import numpy as np

from repro.bench.harness import ExperimentTable
from repro.core.greedy import parallel_greedy
from repro.core.primal_dual import parallel_primal_dual
from repro.lp.duality import check_dual_feasible
from repro.metrics.generators import euclidean_instance, two_scale_instance
from repro.metrics.instance import FacilityLocationInstance


def cheap_hub_instance(seed=0):
    """A workload where preprocessing *provably triggers*: a zero-cost
    facility co-located with eight clients (star price 0 ≤ γ/m²),
    while the rest of the instance lives at ordinary scale. Without
    preprocessing, the §5 duals overtighten that free facility."""
    from repro.metrics.space import MetricSpace

    rng = np.random.default_rng(seed)
    hub = np.array([[0.5, 0.5]])
    facilities = np.vstack([hub, rng.random((12, 2))])
    clients = np.vstack([np.repeat(hub, 8, axis=0), rng.random((40, 2))])
    space = MetricSpace.from_points(np.vstack([facilities, clients]))
    f = np.concatenate([[0.0], 1.0 + rng.random(12) * 2.0])
    return FacilityLocationInstance.from_metric(
        space, np.arange(13), 13 + np.arange(48), f
    )


def test_e5_preprocessing_effects(benchmark):
    table = ExperimentTable("E5", "preprocessing on/off: rounds, cost, dual feasibility")
    workloads = [
        ("euclid-16x64", euclidean_instance(16, 64, seed=0)),
        ("two-scale-5x12", two_scale_instance(5, 12, scale=50.0, seed=0)),
        ("cheap-hub-13x48", cheap_hub_instance(seed=0)),
    ]
    for name, inst in workloads:
        g_on = parallel_greedy(inst, epsilon=0.2, seed=1, preprocess=True)
        g_off = parallel_greedy(inst, epsilon=0.2, seed=1, preprocess=False)
        pd_on = parallel_primal_dual(inst, epsilon=0.2, seed=1, preprocess=True)
        pd_off = parallel_primal_dual(inst, epsilon=0.2, seed=1, preprocess=False)

        # Greedy claim: preprocessing damages cost by at most ~opt/m.
        assert g_on.cost <= g_off.cost * (1 + 2.0 / inst.m) + g_on.extra["gamma"] / inst.m + 1e-9 or (
            g_on.cost <= g_off.cost  # often preprocessing helps outright
        )
        # Primal–dual claim: duals are exactly feasible only with
        # preprocessing (Claim 5.1); without, violation ≤ γ·n_c/m².
        check_dual_feasible(inst, pd_on.alpha, tol=1e-7)
        beta_off = np.maximum(0.0, pd_off.alpha[None, :] - inst.D)
        overshoot = float(np.max(beta_off.sum(axis=1) - inst.f))
        assert overshoot <= pd_off.extra["gamma"] * inst.n_clients / inst.m**2 + 1e-9

        table.add(
            instance=name,
            greedy_rounds_on=g_on.rounds["greedy_outer"],
            greedy_rounds_off=g_off.rounds["greedy_outer"],
            greedy_cost_delta=(g_on.cost - g_off.cost) / g_off.cost,
            pd_iters_on=pd_on.rounds["pd_iterations"],
            pd_iters_off=pd_off.rounds["pd_iterations"],
            pd_dual_overshoot_off=overshoot,
            preprocessed_clients=g_on.extra["preprocessed_clients"],
        )
    table.emit()

    inst = workloads[0][1]
    benchmark(lambda: parallel_greedy(inst, epsilon=0.2, seed=1, preprocess=True).cost)
