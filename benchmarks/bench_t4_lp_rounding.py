"""T4 — Theorem 6.5: LP filtering + rounding, (4+ε) vs the LP optimum.

Paper claims: given an optimal LP solution, an RNC rounding with cost
≤ (4+ε)·LP in O(m log m log_{1+ε} m) work. Measured: ratio vs the LP
value (the natural reference — the claim is relative to the LP), Claim
6.3 facility accounting, Claim 6.4 per-client service bounds.
"""

import numpy as np

from repro.bench.harness import ExperimentTable
from repro.bench.workloads import fl_lp_suite, fl_ratio_suite
from repro.core.lp_rounding import parallel_lp_rounding
from repro.lp.solve import solve_primal

EPS = 0.1
A = 1.0 / 3.0


def test_t4_quality_vs_lp(benchmark, medium_instance):
    table = ExperimentTable("T4a", "LP rounding vs LP optimum (claim: ≤ 4+ε)")
    for name, inst in fl_ratio_suite() + fl_lp_suite():
        primal = solve_primal(inst)
        ratios = [
            parallel_lp_rounding(inst, primal, epsilon=EPS, seed=s).cost / primal.value
            for s in range(3)
        ]
        table.add(
            instance=name,
            lp=primal.value,
            worst=max(ratios),
            mean=float(np.mean(ratios)),
        )
        assert max(ratios) <= 4 * (1 + EPS) * (1 + 1e-9) + 1.0 / inst.m
    table.emit()

    primal = solve_primal(medium_instance)
    benchmark(lambda: parallel_lp_rounding(medium_instance, primal, epsilon=EPS, seed=0).cost)


def test_t4_claims(benchmark, medium_instance):
    table = ExperimentTable("T4b", "Claims 6.3/6.4: facility and service accounting")
    for name, inst in fl_ratio_suite():
        primal = solve_primal(inst)
        sol = parallel_lp_rounding(inst, primal, epsilon=EPS, filter_alpha=A, seed=1)
        y_budget = float((sol.extra["y_prime"] * inst.f).sum())
        assert sol.facility_cost <= y_budget * (1 + 1e-9)
        delta = sol.extra["delta"]
        served = inst.connection_distances(sol.opened)
        normal = delta > sol.extra["theta"] / inst.m**2
        bound = 3 * (1 + A) * (1 + EPS)
        assert np.all(served[normal] <= bound * delta[normal] * (1 + 1e-9))
        table.add(
            instance=name,
            facility_cost=sol.facility_cost,
            y_budget=y_budget,
            worst_service_multiple=float(
                np.max(served[normal] / np.maximum(delta[normal], 1e-30), initial=0.0)
            ),
            service_bound=bound,
            rounds=sol.rounds["rounding"],
        )
    table.emit()

    primal = solve_primal(medium_instance)
    benchmark(
        lambda: parallel_lp_rounding(
            medium_instance, primal, epsilon=EPS, filter_alpha=A, seed=1
        ).facility_cost
    )
