"""E2 — round/iteration bounds: measured vs the O(log_{1+ε} m) envelopes.

The paper's parallelism hinges on polylogarithmic round counts; this
bench sweeps both m (at fixed ε) and ε (at fixed m) and records every
phase counter against its named envelope from analysis.rounds.
"""

from repro.analysis.rounds import round_envelopes
from repro.bench.harness import ExperimentTable
from repro.bench.workloads import epsilon_sweep, fl_scaling_suite
from repro.core.greedy import parallel_greedy
from repro.core.lp_rounding import parallel_lp_rounding
from repro.core.primal_dual import parallel_primal_dual
from repro.lp.solve import solve_primal
from repro.metrics.generators import euclidean_instance

EPS = 0.2


def test_e2_rounds_vs_m(benchmark):
    table = ExperimentTable("E2a", "round counts vs m at ε = 0.2")
    for name, inst in fl_scaling_suite():
        env = round_envelopes(inst.m, EPS)
        g = parallel_greedy(inst, epsilon=EPS, seed=0)
        pd = parallel_primal_dual(inst, epsilon=EPS, seed=0)
        lr = parallel_lp_rounding(inst, solve_primal(inst), epsilon=EPS, seed=0)
        table.add(
            m=inst.m,
            greedy_outer=g.rounds["greedy_outer"],
            greedy_outer_bound=env["greedy_outer"],
            greedy_subselect=g.rounds["greedy_subselect"],
            pd_iterations=pd.rounds["pd_iterations"],
            pd_bound=env["pd_iterations"],
            rounding=lr.rounds["rounding"],
            rounding_bound=env["rounding"],
        )
        assert g.rounds["greedy_outer"] <= env["greedy_outer"]
        assert pd.rounds["pd_iterations"] <= env["pd_iterations"]
        assert lr.rounds["rounding"] <= env["rounding"]
    table.emit()

    inst = fl_scaling_suite()[0][1]
    benchmark(lambda: parallel_primal_dual(inst, epsilon=EPS, seed=0).rounds["pd_iterations"])


def test_e2_rounds_vs_epsilon(benchmark):
    table = ExperimentTable("E2b", "round counts vs ε at m = 1600")
    inst = euclidean_instance(20, 80, seed=7)
    primal = solve_primal(inst)
    for eps in epsilon_sweep():
        env = round_envelopes(inst.m, eps)
        g = parallel_greedy(inst, epsilon=eps, seed=0)
        pd = parallel_primal_dual(inst, epsilon=eps, seed=0)
        lr = parallel_lp_rounding(inst, primal, epsilon=eps, seed=0)
        table.add(
            epsilon=float(eps),
            greedy_outer=g.rounds["greedy_outer"],
            pd_iterations=pd.rounds["pd_iterations"],
            pd_bound=env["pd_iterations"],
            rounding=lr.rounds["rounding"],
        )
        assert pd.rounds["pd_iterations"] <= env["pd_iterations"]
        assert g.rounds["greedy_outer"] <= env["greedy_outer"]
    table.emit()

    benchmark(lambda: parallel_greedy(inst, epsilon=0.5, seed=0).cost)
